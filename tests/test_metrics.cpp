// The farm health plane's data model and wire (PR-10): the metric
// registry's ring semantics (wrap, sequence numbers, registration-order
// columns, the pre-sample hook), the window/delta reductions the monitors
// build on, the v7 stats-reply ring codec (round trip at v7, shape-stable
// absence below v7, for eval and store replies alike), live servers
// serving their rings through the stats connection, and the Prometheus
// text-exposition helpers.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "doe/batch_runner.hpp"
#include "doe/factorial.hpp"
#include "net/eval_server.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"
#include "net_test_utils.hpp"
#include "store/store_client.hpp"
#include "store/store_server.hpp"

using namespace ehdoe;
using namespace ehdoe::net_test;
namespace metrics = ehdoe::core::metrics;
using ehdoe::num::Vector;

namespace {

const doe::DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

core::Simulation identity_sim() {
    return [](const Vector& nat) -> std::map<std::string, double> {
        return {{"f", nat[0]}};
    };
}

/// A scratch store directory that dies with the test.
class TempDir {
public:
    explicit TempDir(const std::string& stem) {
        static int seq = 0;
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" + std::to_string(seq++)))
                    .string();
        std::filesystem::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        std::filesystem::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Registry semantics.
// ---------------------------------------------------------------------------
TEST(MetricsRegistry, RingWrapsOldestFirstWithSequenceNumbers) {
    metrics::Registry reg(4);
    double counter = 0.0;
    reg.register_series("c", [&] { return counter; });
    reg.set_interval_us(5'000'000);

    for (int i = 0; i < 6; ++i) {
        counter = 10.0 * (i + 1);
        reg.sample_now(static_cast<std::uint64_t>(100 * (i + 1)));
    }
    EXPECT_EQ(reg.samples_taken(), 6u);

    const metrics::RingSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.interval_us, 5'000'000u);
    ASSERT_EQ(snap.rows.size(), 4u) << "capacity 4 must retain the last 4 of 6 samples";
    EXPECT_EQ(snap.first_seq, 2u) << "rows 0 and 1 were evicted";
    ASSERT_EQ(snap.series, std::vector<std::string>{"c"});
    // Oldest-first: samples 3..6.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(snap.rows[i].t_us, 100u * (i + 3));
        EXPECT_EQ(snap.rows[i].values.at(0), 10.0 * (i + 3));
    }
}

TEST(MetricsRegistry, ColumnsFollowRegistrationOrder) {
    metrics::Registry reg;
    reg.register_series("served", [] { return 7.0; });
    reg.register_series("failed", [] { return 1.0; });
    reg.register_series("in_flight", [] { return 3.0; });
    EXPECT_EQ(reg.series_count(), 3u);
    reg.sample_now(42);

    const metrics::RingSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.first_seq, 0u);
    const std::vector<std::string> expected{"served", "failed", "in_flight"};
    EXPECT_EQ(snap.series, expected);
    ASSERT_EQ(snap.rows.size(), 1u);
    EXPECT_EQ(snap.rows[0].values, (std::vector<double>{7.0, 1.0, 3.0}));
}

TEST(MetricsRegistry, RegisterAfterFirstSampleThrows) {
    metrics::Registry reg;
    reg.register_series("a", [] { return 0.0; });
    reg.sample_now(1);
    EXPECT_THROW(reg.register_series("b", [] { return 0.0; }), std::logic_error)
        << "the row width is fixed once sampling starts";
}

TEST(MetricsRegistry, PreSampleHookRunsBeforeProbesEachSample) {
    metrics::Registry reg;
    double shared = 0.0;
    int hook_runs = 0;
    reg.set_pre_sample([&] {
        ++hook_runs;
        shared = 100.0 * hook_runs;
    });
    reg.register_series("derived", [&] { return shared; });

    reg.sample_now(1);
    reg.sample_now(2);
    EXPECT_EQ(hook_runs, 2);
    const metrics::RingSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.rows.size(), 2u);
    EXPECT_EQ(snap.rows[0].values.at(0), 100.0);
    EXPECT_EQ(snap.rows[1].values.at(0), 200.0);
}

// ---------------------------------------------------------------------------
// Ring reductions — what farm-top, metrics-export and the straggler test
// compute from a snapshot.
// ---------------------------------------------------------------------------
namespace {

metrics::RingSnapshot ring_of(std::vector<std::string> series,
                              std::vector<std::vector<double>> rows) {
    metrics::RingSnapshot ring;
    ring.interval_us = 1'000'000;
    ring.series = std::move(series);
    std::uint64_t t = 100;
    for (auto& values : rows) {
        metrics::RingSnapshot::Row row;
        row.t_us = t += 100;
        row.values = std::move(values);
        ring.rows.push_back(std::move(row));
    }
    return ring;
}

}  // namespace

TEST(MetricsAlgebra, FindSeriesReturnsColumnOrMinusOne) {
    const metrics::RingSnapshot ring = ring_of({"served", "p99_us"}, {});
    EXPECT_EQ(metrics::find_series(ring, "served"), 0);
    EXPECT_EQ(metrics::find_series(ring, "p99_us"), 1);
    EXPECT_EQ(metrics::find_series(ring, "absent"), -1);
}

TEST(MetricsAlgebra, LastDeltaIsTheIncrementBetweenTheLastTwoRows) {
    const metrics::RingSnapshot ring =
        ring_of({"served"}, {{10.0}, {25.0}, {40.0}});
    EXPECT_EQ(metrics::last_delta(ring, 0), 15.0);
    EXPECT_EQ(metrics::last_delta(ring, 9), 0.0) << "missing column reads as 0";
    const metrics::RingSnapshot one = ring_of({"served"}, {{10.0}});
    EXPECT_EQ(metrics::last_delta(one, 0), 0.0) << "one row has no delta";
}

TEST(MetricsAlgebra, MedianPositiveIgnoresZerosAndNegatives) {
    EXPECT_EQ(metrics::median_positive({}), 0.0);
    EXPECT_EQ(metrics::median_positive({0.0, -3.0, 0.0}), 0.0);
    EXPECT_EQ(metrics::median_positive({5.0}), 5.0);
    EXPECT_EQ(metrics::median_positive({0.0, 9.0, 1.0, 5.0}), 5.0);
    EXPECT_EQ(metrics::median_positive({4.0, 8.0, -1.0, 0.0}), 6.0)
        << "even count averages the middle pair";
}

TEST(MetricsAlgebra, WindowValueIsTheMedianOfPositiveSamples) {
    // Idle rows (p99 = 0) must not drag the window down.
    const metrics::RingSnapshot ring = ring_of(
        {"served", "p99_us"}, {{1.0, 0.0}, {2.0, 300.0}, {3.0, 0.0}, {4.0, 500.0}});
    EXPECT_EQ(metrics::window_value(ring, 1), 400.0);
    EXPECT_EQ(metrics::window_value(ring, 0), 2.5);
    EXPECT_EQ(metrics::window_value(ring, 7), 0.0) << "missing column reads as 0";
}

// ---------------------------------------------------------------------------
// The v7 stats wire. A socketpair is transport enough: the codec is the
// same read_exact/write_all discipline TCP uses.
// ---------------------------------------------------------------------------
namespace {

metrics::RingSnapshot sample_ring() {
    metrics::RingSnapshot ring = ring_of(
        {"served", "failed"}, {{3.0, 0.0}, {8.0, 1.0}, {21.0, 1.0}});
    ring.interval_us = 250'000;
    ring.first_seq = 17;
    return ring;
}

void expect_ring_eq(const metrics::RingSnapshot& got, const metrics::RingSnapshot& want) {
    EXPECT_EQ(got.interval_us, want.interval_us);
    EXPECT_EQ(got.first_seq, want.first_seq);
    EXPECT_EQ(got.series, want.series);
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (std::size_t i = 0; i < got.rows.size(); ++i) {
        EXPECT_EQ(got.rows[i].t_us, want.rows[i].t_us);
        EXPECT_EQ(got.rows[i].values, want.rows[i].values) << "row " << i;
    }
}

}  // namespace

TEST(MetricsWire, EvalStatsReplyRoundTripsTheRingAtV7) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    net::ShardStats out;
    out.points_served = 1234;
    out.latency_buckets = {{10, 3}, {11, 1}};
    out.latency_p50_us = 120.0;
    out.latency_p95_us = 450.0;
    out.latency_p99_us = 900.0;
    out.metrics = sample_ring();
    ASSERT_TRUE(net::write_stats_reply(sv[0], net::kStatusOk, out, "", 7));

    net::ShardStats in;
    std::uint64_t status = net::kStatusError;
    std::string message;
    ASSERT_TRUE(net::read_stats_reply(sv[1], status, in, message, 7));
    EXPECT_EQ(status, net::kStatusOk);
    EXPECT_EQ(in.points_served, 1234u);
    EXPECT_EQ(in.latency_buckets, out.latency_buckets);
    expect_ring_eq(in.metrics, out.metrics);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(MetricsWire, EvalStatsReplyBelowV7CarriesNoRing) {
    // A v5/v6 monitor and a v7 server agree on the v5 frame: the writer
    // must not emit the ring and the reader must not expect one.
    for (const std::uint32_t version : {std::uint32_t{5}, std::uint32_t{6}}) {
        int sv[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
        net::ShardStats out;
        out.points_served = 9;
        out.metrics = sample_ring();
        ASSERT_TRUE(net::write_stats_reply(sv[0], net::kStatusOk, out, "", version));
        ::shutdown(sv[0], SHUT_WR);  // EOF after the frame: no trailing bytes

        net::ShardStats in;
        std::uint64_t status = net::kStatusError;
        std::string message;
        ASSERT_TRUE(net::read_stats_reply(sv[1], status, in, message, version));
        EXPECT_EQ(status, net::kStatusOk);
        EXPECT_EQ(in.points_served, 9u);
        EXPECT_TRUE(in.metrics.empty()) << "v" << version << " reply grew a ring";
        // The writer really stopped at the v5 shape: the stream is at EOF.
        char byte = 0;
        EXPECT_EQ(::recv(sv[1], &byte, 1, 0), 0);
        ::close(sv[0]);
        ::close(sv[1]);
    }
}

TEST(MetricsWire, StoreStatsReplyRoundTripsTheRingAtV7) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);

    net::StoreStats out;
    out.keys = 45;
    out.segments = 2;
    out.get_hits = 44;
    out.metrics = sample_ring();
    ASSERT_TRUE(net::write_store_stats_reply(sv[0], net::kStatusOk, out, "", 7));

    net::StoreStats in;
    std::uint64_t status = net::kStatusError;
    std::string message;
    ASSERT_TRUE(net::read_store_stats_reply(sv[1], status, in, message, 7));
    EXPECT_EQ(status, net::kStatusOk);
    EXPECT_EQ(in.keys, 45u);
    EXPECT_EQ(in.get_hits, 44u);
    expect_ring_eq(in.metrics, out.metrics);
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(MetricsWire, StoreStatsReplyAtV6CarriesNoRing) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    net::StoreStats out;
    out.keys = 3;
    out.metrics = sample_ring();
    ASSERT_TRUE(net::write_store_stats_reply(sv[0], net::kStatusOk, out, "", 6));
    ::shutdown(sv[0], SHUT_WR);

    net::StoreStats in;
    std::uint64_t status = net::kStatusError;
    std::string message;
    ASSERT_TRUE(net::read_store_stats_reply(sv[1], status, in, message, 6));
    EXPECT_EQ(status, net::kStatusOk);
    EXPECT_EQ(in.keys, 3u);
    EXPECT_TRUE(in.metrics.empty());
    char byte = 0;
    EXPECT_EQ(::recv(sv[1], &byte, 1, 0), 0) << "a v6 reply must end at the v6 shape";
    ::close(sv[0]);
    ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// Live servers serving their rings.
// ---------------------------------------------------------------------------
TEST(MetricsService, EvalServerServesItsRingInTheStatsReply) {
    net::EvalServerOptions o;
    o.workers = 2;
    o.fingerprint = "sim-id";
    // A huge interval parks the sampler thread; the test samples by hand so
    // the ring contents are deterministic.
    o.metrics_interval_seconds = 3600.0;
    net::EvalServer server(identity_sim(), o);
    server.start();
    server.sample_metrics_now();  // row 0: nothing served yet

    doe::BatchRunner runner(identity_sim(),
                            remote_options({endpoint_of(server)}, "sim-id"));
    ASSERT_EQ(runner.run_design(kSpace, doe::full_factorial(2, 3)).simulations, 9u);
    server.sample_metrics_now();  // row 1: nine points served

    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(
        net::parse_endpoint(endpoint_of(server)), stats, error))
        << error;
    EXPECT_EQ(stats.version, net::kProtocolVersion);
    EXPECT_EQ(stats.points_served, 9u);

    const metrics::RingSnapshot& ring = stats.metrics;
    ASSERT_FALSE(ring.empty());
    EXPECT_EQ(ring.interval_us, 3600u * 1'000'000u);
    ASSERT_EQ(ring.rows.size(), 2u);
    // The shard's advertised series include every column the monitors use.
    for (const char* name :
         {"served", "failed", "timed_out", "in_flight", "p50_us", "p95_us", "p99_us"}) {
        EXPECT_GE(metrics::find_series(ring, name), 0) << name;
    }
    const int served = metrics::find_series(ring, "served");
    EXPECT_EQ(ring.rows[0].values.at(static_cast<std::size_t>(served)), 0.0);
    EXPECT_EQ(ring.rows[1].values.at(static_cast<std::size_t>(served)), 9.0);
    EXPECT_EQ(metrics::last_delta(ring, static_cast<std::size_t>(served)), 9.0);
    // The interval's percentile columns saw nine real evaluations.
    const int p99 = metrics::find_series(ring, "p99_us");
    EXPECT_GT(ring.rows[1].values.at(static_cast<std::size_t>(p99)), 0.0);
    server.stop();
}

TEST(MetricsService, EvalServerWithSamplingOffServesAnEmptyRing) {
    auto server = start_server(identity_sim(), "sim-id");
    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(
        net::parse_endpoint(endpoint_of(*server)), stats, error))
        << error;
    EXPECT_TRUE(stats.metrics.empty()) << "metrics default off: no ring rows";
    EXPECT_EQ(stats.metrics.interval_us, 0u);
    server->stop();
}

TEST(MetricsService, StoreServerServesItsRingAndQueryHelperParsesIt) {
    TempDir dir("ehdoe-metrics-store");
    store::StoreServerOptions o;
    o.dir = dir.path();
    o.verbose = false;
    o.metrics_interval_seconds = 3600.0;
    store::StoreServer server(o);
    server.start();
    server.sample_metrics_now();  // row 0: empty store

    store::StoreClient client("127.0.0.1", server.port());
    std::vector<net::StoreEntry> entries(2);
    entries[0].key = "k1";
    entries[0].responses = {{"f", 1.0}};
    entries[1].key = "k2";
    entries[1].responses = {{"f", 2.0}};
    ASSERT_EQ(client.put(entries), 2u);
    auto lookups = client.get({"k1", "missing"});
    ASSERT_EQ(lookups.size(), 2u);
    server.sample_metrics_now();  // row 1: 2 keys, 2 gets, 1 hit

    // Through the endpoint-string helper the CLIs use.
    net::StoreStats stats;
    std::string error;
    ASSERT_TRUE(store::query_store_stats(
        "127.0.0.1:" + std::to_string(server.port()), stats, error))
        << error;
    EXPECT_EQ(stats.keys, 2u);
    const metrics::RingSnapshot& ring = stats.metrics;
    ASSERT_EQ(ring.rows.size(), 2u);
    for (const char* name : {"keys", "segments", "gets_served", "get_hits",
                             "puts_received", "records_appended"}) {
        EXPECT_GE(metrics::find_series(ring, name), 0) << name;
    }
    const int keys = metrics::find_series(ring, "keys");
    const int gets = metrics::find_series(ring, "gets_served");
    const int hits = metrics::find_series(ring, "get_hits");
    EXPECT_EQ(ring.rows[0].values.at(static_cast<std::size_t>(keys)), 0.0);
    EXPECT_EQ(ring.rows[1].values.at(static_cast<std::size_t>(keys)), 2.0);
    EXPECT_EQ(metrics::last_delta(ring, static_cast<std::size_t>(gets)), 2.0);
    EXPECT_EQ(metrics::last_delta(ring, static_cast<std::size_t>(hits)), 1.0);

    // Malformed endpoint strings fail with a message, not an exception.
    error.clear();
    EXPECT_FALSE(store::query_store_stats("no-port-here", stats, error));
    EXPECT_FALSE(error.empty());
    server.stop();
}

// ---------------------------------------------------------------------------
// Prometheus text exposition.
// ---------------------------------------------------------------------------
TEST(MetricsExposition, EscapesLabelValues) {
    EXPECT_EQ(metrics::escape_label_value("plain"), "plain");
    EXPECT_EQ(metrics::escape_label_value("a\\b"), "a\\\\b");
    EXPECT_EQ(metrics::escape_label_value("say \"hi\""), "say \\\"hi\\\"");
    EXPECT_EQ(metrics::escape_label_value("line\nbreak"), "line\\nbreak");
}

TEST(MetricsExposition, RendersHeadersAndSamples) {
    std::string out;
    metrics::append_exposition_header(out, "ehdoe_eval_points_served_total",
                                      "Result frames answered.", "counter");
    metrics::append_sample(out, "ehdoe_eval_points_served_total",
                           {{"endpoint", "127.0.0.1:4217"}}, 42.0);
    metrics::append_sample(out, "ehdoe_up", {}, 1.0);
    EXPECT_EQ(out,
              "# HELP ehdoe_eval_points_served_total Result frames answered.\n"
              "# TYPE ehdoe_eval_points_served_total counter\n"
              "ehdoe_eval_points_served_total{endpoint=\"127.0.0.1:4217\"} 42\n"
              "ehdoe_up 1\n");
}

TEST(MetricsExposition, NonFiniteValuesRenderAsZero) {
    std::string out;
    metrics::append_sample(out, "m", {}, std::nan(""));
    EXPECT_EQ(out, "m 0\n");
}
