// Tests for the explicit linearized (PWL) state-space engine.
#include <gtest/gtest.h>

#include <cmath>

#include "sim/state_space.hpp"

using namespace ehdoe::sim;
using ehdoe::num::Matrix;
using ehdoe::num::Vector;

namespace {

/// Plain LTI (no switches): v' = (u - v)/tau.
PwlSystem rc_system(double tau) {
    PwlSystem s;
    s.state_dim = 1;
    s.input_dim = 1;
    s.assemble = [tau](std::uint32_t, Matrix& a, Matrix& b) {
        a(0, 0) = -1.0 / tau;
        b(0, 0) = 1.0 / tau;
    };
    return s;
}

/// One-switch system: a "diode" from source node into the state. Off: decay
/// only; on (x[0] < vthr implies source conducts... modelled on the branch
/// voltage u_const - x[0]): charging path appears.
PwlSystem charger_system(double tau_leak, double r_on, double c, double v_src, double v_on) {
    PwlSystem s;
    s.state_dim = 1;
    s.input_dim = 1;  // constant-1 input
    s.switches.push_back(PwlSwitch{v_on});
    s.assemble = [=](std::uint32_t seg, Matrix& a, Matrix& b) {
        a(0, 0) = -1.0 / tau_leak;
        if (seg & 1u) {
            // i = (v_src - x - v_on)/r_on into the capacitor.
            a(0, 0) += -1.0 / (r_on * c);
            b(0, 0) = (v_src - v_on) / (r_on * c);
        } else {
            b(0, 0) = 0.0;
        }
    };
    s.branch_voltage = [=](std::size_t, const Vector& x) { return v_src - x[0]; };
    return s;
}

}  // namespace

TEST(PwlEngine, ExactForLinearSystem) {
    const double tau = 1e-3;
    PwlEngineOptions opt;
    opt.step = 2e-4;  // large step: exact anyway, that is the point of [4]
    PwlStateSpaceEngine eng(rc_system(tau), opt);
    const Vector u{1.0};
    for (int i = 0; i < 10; ++i) eng.step(u);
    const double t = eng.time();
    EXPECT_NEAR(eng.state()[0], 1.0 - std::exp(-t / tau), 1e-12);
}

TEST(PwlEngine, CachesDiscretization) {
    PwlStateSpaceEngine eng(rc_system(1e-3), {1e-4, true, 4});
    const Vector u{1.0};
    for (int i = 0; i < 100; ++i) eng.step(u);
    EXPECT_EQ(eng.stats().cache_misses, 1u);   // one segment, one expm
    EXPECT_EQ(eng.stats().cache_hits, 99u);
    EXPECT_EQ(eng.cache_size(), 1u);
}

TEST(PwlEngine, InvalidateCacheForcesRebuild) {
    PwlStateSpaceEngine eng(rc_system(1e-3), {1e-4, true, 4});
    const Vector u{1.0};
    eng.step(u);
    eng.invalidate_cache();
    eng.step(u);
    EXPECT_EQ(eng.stats().cache_misses, 2u);
}

TEST(PwlEngine, SwitchTurnsOnAndCharges) {
    // v_src = 2, v_on = 0.5: switch is on at x=0 (branch v = 2 > 0.5), charges
    // toward (v_src - v_on) balanced against leak.
    PwlStateSpaceEngine eng(charger_system(10.0, 100.0, 1e-3, 2.0, 0.5), {1e-3, true, 4});
    const Vector u{1.0};
    for (int i = 0; i < 5000; ++i) eng.step(u);
    EXPECT_GT(eng.state()[0], 1.0);
    EXPECT_LT(eng.state()[0], 1.5 + 1e-6);  // cannot exceed v_src - v_on
}

TEST(PwlEngine, SegmentChangesAreCounted) {
    // Start above v_src - v_on: the diode is off and the leak discharges the
    // state until the branch voltage crosses the threshold and it turns on.
    PwlStateSpaceEngine eng(charger_system(0.05, 50.0, 1e-3, 2.0, 0.5), {1e-3, true, 4});
    eng.set_state(Vector{1.8});
    EXPECT_EQ(eng.segment(), 0u);  // branch voltage 0.2 < v_on
    const Vector u{1.0};
    for (int i = 0; i < 3000; ++i) eng.step(u);
    EXPECT_GE(eng.stats().segment_changes, 1u);
    EXPECT_EQ(eng.segment(), 1u);  // settled conducting at x ~ 0.75
    EXPECT_NEAR(eng.state()[0], 0.75, 1e-3);
}

TEST(PwlEngine, RunWithObserver) {
    PwlStateSpaceEngine eng(rc_system(1e-2), {1e-3, true, 4});
    std::size_t calls = 0;
    double last_t = 0.0;
    eng.run(
        0.05, [](double) { return Vector{1.0}; },
        [&](double t, const Vector& x) {
            ++calls;
            EXPECT_GT(t, last_t);
            last_t = t;
            EXPECT_GE(x[0], 0.0);
        });
    EXPECT_EQ(calls, 50u);
    EXPECT_NEAR(eng.time(), 0.05, 1e-9);
}

TEST(PwlEngine, ValidatesConstruction) {
    PwlSystem s;  // empty
    EXPECT_THROW(PwlStateSpaceEngine(s, {}), std::invalid_argument);

    PwlSystem good = rc_system(1.0);
    PwlEngineOptions bad;
    bad.step = 0.0;
    EXPECT_THROW(PwlStateSpaceEngine(good, bad), std::invalid_argument);

    PwlSystem missing_bv = rc_system(1.0);
    missing_bv.switches.push_back(PwlSwitch{0.3});
    EXPECT_THROW(PwlStateSpaceEngine(missing_bv, {}), std::invalid_argument);
}

TEST(PwlEngine, ValidatesStepInput) {
    PwlStateSpaceEngine eng(rc_system(1.0), {1e-3, true, 4});
    EXPECT_THROW(eng.step(Vector{1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(eng.set_state(Vector{1.0, 2.0}), std::invalid_argument);
}

// Property: engine result is independent of step size for LTI systems
// (exactness of the ZOH discretization) at times that are common multiples.
class PwlStepP : public ::testing::TestWithParam<double> {};

TEST_P(PwlStepP, StepSizeInvariantForLti) {
    const double h = GetParam();
    PwlEngineOptions opt;
    opt.step = h;
    PwlStateSpaceEngine eng(rc_system(2e-3), opt);
    const Vector u{1.0};
    const int steps = static_cast<int>(std::lround(1e-2 / h));
    for (int i = 0; i < steps; ++i) eng.step(u);
    EXPECT_NEAR(eng.state()[0], 1.0 - std::exp(-1e-2 / 2e-3), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Steps, PwlStepP, ::testing::Values(1e-4, 2e-4, 5e-4, 1e-3, 2.5e-3));
