// Vibration source tests.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "harvester/vibration.hpp"

using namespace ehdoe::harvester;

TEST(Sine, WaveformAndRms) {
    SineVibration s(2.0, 50.0);
    EXPECT_NEAR(s.acceleration(0.0), 0.0, 1e-12);
    EXPECT_NEAR(s.acceleration(0.005), 2.0, 1e-12);  // quarter period
    EXPECT_DOUBLE_EQ(s.dominant_frequency(123.0), 50.0);
    EXPECT_NEAR(s.rms_amplitude(), 2.0 / M_SQRT2, 1e-12);
}

TEST(Sine, Validation) {
    EXPECT_THROW(SineVibration(-1.0, 50.0), std::invalid_argument);
    EXPECT_THROW(SineVibration(1.0, 0.0), std::invalid_argument);
}

TEST(MultiTone, DominantIsLargestAmplitude) {
    MultiToneVibration m({{0.2, 30.0, 0.0}, {0.9, 60.0, 0.0}, {0.3, 90.0, 0.0}});
    EXPECT_DOUBLE_EQ(m.dominant_frequency(0.0), 60.0);
    EXPECT_NEAR(m.rms_amplitude(), std::sqrt((0.04 + 0.81 + 0.09) / 2.0), 1e-12);
}

TEST(MultiTone, SuperpositionAtTimeZero) {
    MultiToneVibration m({{1.0, 10.0, M_PI / 2.0}, {0.5, 20.0, M_PI / 2.0}});
    EXPECT_NEAR(m.acceleration(0.0), 1.5, 1e-12);
    EXPECT_THROW(MultiToneVibration({}), std::invalid_argument);
}

TEST(Chirp, FrequencyRampsLinearly) {
    ChirpVibration c(1.0, 40.0, 80.0, 10.0);
    EXPECT_DOUBLE_EQ(c.dominant_frequency(0.0), 40.0);
    EXPECT_DOUBLE_EQ(c.dominant_frequency(5.0), 60.0);
    EXPECT_DOUBLE_EQ(c.dominant_frequency(10.0), 80.0);
    EXPECT_DOUBLE_EQ(c.dominant_frequency(99.0), 80.0);  // holds after sweep
}

TEST(Chirp, ContinuousAtSweepEnd) {
    ChirpVibration c(1.0, 40.0, 80.0, 2.0);
    const double eps = 1e-7;
    EXPECT_NEAR(c.acceleration(2.0 - eps), c.acceleration(2.0 + eps), 1e-3);
}

TEST(Drift, FollowsProfile) {
    DriftVibration d(1.0, {0.0, 10.0, 20.0}, {60.0, 70.0, 65.0});
    EXPECT_DOUBLE_EQ(d.dominant_frequency(0.0), 60.0);
    EXPECT_DOUBLE_EQ(d.dominant_frequency(5.0), 65.0);
    EXPECT_DOUBLE_EQ(d.dominant_frequency(10.0), 70.0);
    EXPECT_DOUBLE_EQ(d.dominant_frequency(15.0), 67.5);
    EXPECT_DOUBLE_EQ(d.dominant_frequency(25.0), 65.0);  // clamped after end
}

TEST(Drift, WaveformContinuousThroughBreakpoints) {
    DriftVibration d(1.0, {0.0, 1.0, 2.0}, {50.0, 60.0, 55.0});
    const double eps = 1e-7;
    for (double knot : {1.0, 2.0}) {
        EXPECT_NEAR(d.acceleration(knot - eps), d.acceleration(knot + eps), 1e-3);
    }
}

TEST(Drift, InstantaneousFrequencyMatchesZeroCrossings) {
    DriftVibration d(1.0, {0.0, 100.0}, {60.0, 60.0});
    int crossings = 0;
    double prev = d.acceleration(10.0);
    const double dt = 1e-4;
    for (double t = 10.0 + dt; t < 11.0; t += dt) {
        const double cur = d.acceleration(t);
        if (prev < 0.0 && cur >= 0.0) ++crossings;
        prev = cur;
    }
    EXPECT_NEAR(crossings, 60, 1);
}

TEST(Noisy, AddsRequestedNoisePower) {
    auto base = std::make_shared<SineVibration>(1.0, 60.0);
    NoisyVibration n(base, 0.3, 100.0, 42, 10.0);
    EXPECT_NEAR(n.rms_amplitude(), std::sqrt(0.5 + 0.09), 1e-6);
    EXPECT_DOUBLE_EQ(n.dominant_frequency(0.0), 60.0);
}

TEST(Noisy, DeterministicFromSeed) {
    auto base = std::make_shared<SineVibration>(1.0, 60.0);
    NoisyVibration a(base, 0.3, 100.0, 7, 2.0);
    NoisyVibration b(base, 0.3, 100.0, 7, 2.0);
    for (double t = 0.0; t < 1.0; t += 0.1) {
        EXPECT_DOUBLE_EQ(a.acceleration(t), b.acceleration(t));
    }
    NoisyVibration c(base, 0.3, 100.0, 8, 2.0);
    EXPECT_NE(a.acceleration(0.5), c.acceleration(0.5));
}

TEST(Noisy, Validation) {
    auto base = std::make_shared<SineVibration>(1.0, 60.0);
    EXPECT_THROW(NoisyVibration(nullptr, 0.1, 100.0, 1, 1.0), std::invalid_argument);
    EXPECT_THROW(NoisyVibration(base, 0.1, 100.0, 1, 1.0, 150.0), std::invalid_argument);
}

TEST(Trace, PlaybackAndLooping) {
    TraceVibration t({0.0, 1.0, 0.0, -1.0}, 4.0, 10.0);
    EXPECT_DOUBLE_EQ(t.acceleration(0.25), 1.0);
    EXPECT_DOUBLE_EQ(t.acceleration(0.125), 0.5);   // linear interp
    EXPECT_DOUBLE_EQ(t.acceleration(1.25), 1.0);    // looped
    EXPECT_DOUBLE_EQ(t.dominant_frequency(0.0), 10.0);
    EXPECT_THROW(TraceVibration({0.0}, 4.0, 1.0), std::invalid_argument);
}

// Property: every source reports rms consistent with direct sampling.
class RmsP : public ::testing::TestWithParam<int> {};

TEST_P(RmsP, RmsMatchesSampledEstimate) {
    std::shared_ptr<VibrationSource> src;
    switch (GetParam()) {
        case 0: src = std::make_shared<SineVibration>(1.3, 47.0); break;
        case 1:
            src = std::make_shared<MultiToneVibration>(
                std::vector<MultiToneVibration::Tone>{{0.8, 50.0, 0.0}, {0.4, 75.0, 0.3}});
            break;
        case 2:
            src = std::make_shared<DriftVibration>(0.9, std::vector<double>{0.0, 4.0},
                                                   std::vector<double>{55.0, 65.0});
            break;
        default: src = std::make_shared<ChirpVibration>(1.1, 40.0, 60.0, 4.0); break;
    }
    double acc = 0.0;
    const int n = 400000;
    for (int i = 0; i < n; ++i) {
        const double a = src->acceleration(i * (4.0 / n));
        acc += a * a;
    }
    EXPECT_NEAR(std::sqrt(acc / n), src->rms_amplitude(), 0.05 * src->rms_amplitude());
}

INSTANTIATE_TEST_SUITE_P(Sources, RmsP, ::testing::Values(0, 1, 2, 3));
