// Hold-out and cross-validation tests.
#include <gtest/gtest.h>

#include "doe/composite.hpp"
#include "doe/lhs.hpp"
#include "numerics/stats.hpp"
#include "rsm/validate.hpp"

using namespace ehdoe::rsm;
using ehdoe::num::Vector;

namespace {
double truth(const Vector& x) { return 1.0 + 2.0 * x[0] - x[1] + 0.8 * x[0] * x[1]; }
}  // namespace

TEST(Holdout, PerfectModelZeroError) {
    const auto d = ehdoe::doe::central_composite(2, {});
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) y[i] = truth(d.points.row(i));
    const FitResult f = fit_ols(ModelSpec(2, ModelOrder::Quadratic), d.points, y);

    const auto probe = ehdoe::doe::latin_hypercube(40, 2, 5);
    std::vector<double> yv(probe.runs());
    for (std::size_t i = 0; i < probe.runs(); ++i) yv[i] = truth(probe.points.row(i));
    const ValidationReport r = validate_holdout(f, probe.points, yv);
    EXPECT_NEAR(r.rmse, 0.0, 1e-9);
    EXPECT_NEAR(r.r_squared, 1.0, 1e-9);
    EXPECT_EQ(r.points, 40u);
}

TEST(Holdout, ReportsNoiseFloor) {
    ehdoe::num::Rng rng = ehdoe::num::make_rng(2);
    const auto d = ehdoe::doe::latin_hypercube(80, 2, 8);
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) {
        y[i] = truth(d.points.row(i)) + ehdoe::num::normal(rng, 0.0, 0.3);
    }
    const FitResult f = fit_ols(ModelSpec(2, ModelOrder::Quadratic), d.points, y);
    const auto probe = ehdoe::doe::latin_hypercube(100, 2, 55);
    std::vector<double> yv(probe.runs());
    for (std::size_t i = 0; i < probe.runs(); ++i) {
        yv[i] = truth(probe.points.row(i)) + ehdoe::num::normal(rng, 0.0, 0.3);
    }
    const ValidationReport r = validate_holdout(f, probe.points, yv);
    EXPECT_NEAR(r.rmse, 0.3, 0.12);  // dominated by observation noise
    EXPECT_GT(r.nrmse_mean, 0.0);
    EXPECT_GT(r.nrmse_range, 0.0);
    EXPECT_GE(r.max_abs_error, r.mean_abs_error);
}

TEST(CrossValidate, ReasonableForGoodModel) {
    ehdoe::num::Rng rng = ehdoe::num::make_rng(3);
    const auto d = ehdoe::doe::latin_hypercube(60, 2, 9);
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) {
        y[i] = truth(d.points.row(i)) + ehdoe::num::normal(rng, 0.0, 0.1);
    }
    const ValidationReport r =
        cross_validate(ModelSpec(2, ModelOrder::Quadratic), d.points, y, 5);
    EXPECT_GT(r.r_squared, 0.95);
    EXPECT_EQ(r.points, 60u);
}

TEST(CrossValidate, FlagsOverfitting) {
    // Cubic model on 14 points: CV error far above training error.
    ehdoe::num::Rng rng = ehdoe::num::make_rng(4);
    const auto d = ehdoe::doe::latin_hypercube(14, 2, 10);
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) {
        y[i] = truth(d.points.row(i)) + ehdoe::num::normal(rng, 0.0, 0.2);
    }
    const ModelSpec cubic(2, ModelOrder::Cubic);  // 10 terms on 14 points
    const FitResult f = fit_ols(cubic, d.points, y);
    const ValidationReport cv = cross_validate(cubic, d.points, y, 7);
    EXPECT_GT(cv.rmse, 1.5 * f.rmse());
}

TEST(CrossValidate, Validation) {
    const auto d = ehdoe::doe::latin_hypercube(20, 2, 1);
    std::vector<double> y(d.runs(), 1.0);
    const ModelSpec m(2, ModelOrder::Linear);
    EXPECT_THROW(cross_validate(m, d.points, y, 1), std::invalid_argument);
    EXPECT_THROW(cross_validate(m, d.points, y, 25), std::invalid_argument);
    EXPECT_THROW(cross_validate(m, d.points, std::vector<double>(3, 0.0), 5),
                 std::invalid_argument);
    // Too many folds for the model size.
    const auto tiny = ehdoe::doe::latin_hypercube(6, 2, 2);
    std::vector<double> ty(6, 1.0);
    EXPECT_THROW(cross_validate(ModelSpec(2, ModelOrder::Quadratic), tiny.points, ty, 6),
                 std::invalid_argument);
}
