// Unit + property tests for the dense factorizations.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "numerics/linalg.hpp"
#include "numerics/stats.hpp"

using namespace ehdoe::num;

namespace {

Matrix random_matrix(std::size_t n, Rng& rng, double scale = 1.0) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j) m(i, j) = uniform(rng, -scale, scale);
    return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
    Matrix a = random_matrix(n, rng);
    Matrix spd = mul_at_b(a, a);
    for (std::size_t i = 0; i < n; ++i) spd(i, i) += static_cast<double>(n);
    return spd;
}

}  // namespace

TEST(Lu, SolvesKnownSystem) {
    Matrix a{{2.0, 1.0}, {1.0, 3.0}};
    Vector b{3.0, 5.0};
    Vector x = LuFactor(a).solve(b);
    EXPECT_NEAR(x[0], 0.8, 1e-12);
    EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, DeterminantWithPivoting) {
    // Requires a row swap (zero pivot in place).
    Matrix a{{0.0, 1.0}, {1.0, 0.0}};
    EXPECT_NEAR(LuFactor(a).determinant(), -1.0, 1e-14);
}

TEST(Lu, SingularThrows) {
    Matrix a{{1.0, 2.0}, {2.0, 4.0}};
    EXPECT_THROW(LuFactor{a}, std::runtime_error);
    EXPECT_DOUBLE_EQ(determinant(a), 0.0);
}

TEST(Lu, NonSquareThrows) {
    Matrix a(2, 3);
    EXPECT_THROW(LuFactor{a}, std::invalid_argument);
}

TEST(Lu, InverseRoundTrip) {
    Rng rng = make_rng(7);
    const Matrix a = random_spd(5, rng);
    const Matrix inv = LuFactor(a).inverse();
    EXPECT_TRUE(approx_equal(a * inv, Matrix::identity(5), 1e-10));
}

TEST(Lu, MatrixRhsSolve) {
    Rng rng = make_rng(8);
    const Matrix a = random_spd(4, rng);
    const Matrix b = random_matrix(4, rng);
    const Matrix x = LuFactor(a).solve(b);
    EXPECT_TRUE(approx_equal(a * x, b, 1e-9));
}

TEST(Cholesky, MatchesLuOnSpd) {
    Rng rng = make_rng(11);
    const Matrix a = random_spd(6, rng);
    Vector b(6);
    for (auto& v : b) v = uniform(rng, -1.0, 1.0);
    EXPECT_TRUE(approx_equal(CholeskyFactor(a).solve(b), LuFactor(a).solve(b), 1e-9));
}

TEST(Cholesky, DeterminantAndLog) {
    Matrix a{{4.0, 2.0}, {2.0, 5.0}};
    CholeskyFactor c(a);
    EXPECT_NEAR(c.determinant(), 16.0, 1e-12);
    EXPECT_NEAR(c.log_determinant(), std::log(16.0), 1e-12);
}

TEST(Cholesky, RejectsIndefinite) {
    Matrix a{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
    EXPECT_THROW(CholeskyFactor{a}, std::runtime_error);
}

TEST(Qr, LeastSquaresLine) {
    // Fit y = 1 + 2x through noise-free points: exact recovery.
    Matrix x(4, 2);
    Vector y(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const double xi = static_cast<double>(i);
        x(i, 0) = 1.0;
        x(i, 1) = xi;
        y[i] = 1.0 + 2.0 * xi;
    }
    Vector beta = QrFactor(x).solve(y);
    EXPECT_NEAR(beta[0], 1.0, 1e-12);
    EXPECT_NEAR(beta[1], 2.0, 1e-12);
}

TEST(Qr, ThinQOrthonormal) {
    Rng rng = make_rng(13);
    Matrix a(8, 4);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 4; ++j) a(i, j) = uniform(rng, -1.0, 1.0);
    QrFactor qr(a);
    const Matrix q = qr.thin_q();
    EXPECT_TRUE(approx_equal(mul_at_b(q, q), Matrix::identity(4), 1e-12));
    // Q R reproduces A.
    EXPECT_TRUE(approx_equal(q * qr.r(), a, 1e-12));
}

TEST(Qr, RankDetection) {
    Matrix a(4, 3);
    for (std::size_t i = 0; i < 4; ++i) {
        a(i, 0) = 1.0;
        a(i, 1) = static_cast<double>(i);
        a(i, 2) = 2.0 * static_cast<double>(i);  // collinear with column 1
    }
    QrFactor qr(a);
    EXPECT_EQ(qr.rank(1e-10), 2u);
    Vector y(4, 1.0);
    EXPECT_THROW(qr.solve(y), std::runtime_error);
}

TEST(Qr, RequiresTallMatrix) {
    Matrix a(2, 3);
    EXPECT_THROW(QrFactor{a}, std::invalid_argument);
}

TEST(Eigen, DiagonalMatrix) {
    const SymmetricEigen e = eigen_symmetric(Matrix::diag(Vector{3.0, 1.0, 2.0}));
    EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[1], 2.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[2], 3.0, 1e-12);
}

TEST(Eigen, Known2x2) {
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};  // eigenvalues 1, 3
    const SymmetricEigen e = eigen_symmetric(a);
    EXPECT_NEAR(e.eigenvalues[0], 1.0, 1e-12);
    EXPECT_NEAR(e.eigenvalues[1], 3.0, 1e-12);
}

TEST(Eigen, ReconstructsMatrix) {
    Rng rng = make_rng(17);
    const Matrix a = random_spd(6, rng);
    const SymmetricEigen e = eigen_symmetric(a);
    // V diag(w) V^T == A.
    const Matrix vd = e.eigenvectors * Matrix::diag(e.eigenvalues);
    const Matrix rec = vd * e.eigenvectors.transposed();
    EXPECT_TRUE(approx_equal(rec, a, 1e-9));
    // Eigenvectors orthonormal.
    EXPECT_TRUE(approx_equal(mul_at_b(e.eigenvectors, e.eigenvectors), Matrix::identity(6), 1e-10));
}

// Property sweep: LU round-trips Ax=b across sizes.
class LinalgSizeP : public ::testing::TestWithParam<int> {};

TEST_P(LinalgSizeP, LuSolveResidualSmall) {
    const auto n = static_cast<std::size_t>(GetParam());
    Rng rng = make_rng(100 + GetParam());
    const Matrix a = random_spd(n, rng);
    Vector b(n);
    for (auto& v : b) v = uniform(rng, -2.0, 2.0);
    const Vector x = LuFactor(a).solve(b);
    EXPECT_LT((a * x - b).norm_inf(), 1e-8 * (1.0 + b.norm_inf()));
}

TEST_P(LinalgSizeP, QrLeastSquaresMatchesNormalEquations) {
    const auto n = static_cast<std::size_t>(GetParam());
    Rng rng = make_rng(200 + GetParam());
    Matrix x(2 * n, n);
    Vector y(2 * n);
    for (std::size_t i = 0; i < x.rows(); ++i) {
        for (std::size_t j = 0; j < n; ++j) x(i, j) = uniform(rng, -1.0, 1.0);
        y[i] = uniform(rng, -1.0, 1.0);
    }
    const Vector via_qr = QrFactor(x).solve(y);
    const Vector via_ne = CholeskyFactor(mul_at_b(x, x)).solve(mul_at_x(x, y));
    EXPECT_TRUE(approx_equal(via_qr, via_ne, 1e-7));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LinalgSizeP, ::testing::Values(1, 2, 3, 5, 8, 13, 20));
