// The CI performance gate: the JSON-subset parser, dotted/indexed path
// lookup, and the gate checker itself — including the mandatory proof that
// a synthetic regressed ledger line actually FAILS the tracked thresholds
// (a gate that cannot fail guards nothing).
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/perf_gate.hpp"

using namespace ehdoe::core;

namespace {

/// The tracked gate spec for t8_remote.jsonl, verbatim from
/// bench/history/gates.json.
const char* kT8Gates = R"({
  "t8_remote.jsonl": {
    "require_true": ["contract_ok", "hetero.identical"],
    "require_eq": {"sweep[1].backend": "remote x1"},
    "min": {"sweep[1].speedup": 0.95}
  }
})";

/// A healthy t8 ledger line shaped like the real bench output.
std::string t8_line(double remote_x1_speedup, bool contract_ok = true,
                    bool identical = true) {
    return std::string("{\"bench\": \"t8_remote\", \"contract_ok\": ") +
           (contract_ok ? "true" : "false") +
           ", \"sweep\": ["
           "{\"backend\": \"in-process x1 (reference)\", \"speedup\": 1}, "
           "{\"backend\": \"remote x1\", \"speedup\": " +
           std::to_string(remote_x1_speedup) +
           "}], \"hetero\": {\"identical\": " + (identical ? "true" : "false") + "}}";
}

}  // namespace

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------
TEST(JsonParser, ParsesScalarsArraysAndObjects) {
    const JsonValue v = parse_json(
        R"({"s": "a\"b", "n": -2.5e2, "b": true, "z": null, "a": [1, 2, 3]})");
    ASSERT_EQ(v.kind, JsonValue::Kind::Object);
    EXPECT_EQ(v.find("s")->string, "a\"b");
    EXPECT_EQ(v.find("n")->number, -250.0);
    EXPECT_TRUE(v.find("b")->boolean);
    EXPECT_EQ(v.find("z")->kind, JsonValue::Kind::Null);
    ASSERT_EQ(v.find("a")->array.size(), 3u);
    EXPECT_EQ(v.find("a")->array[2].number, 3.0);
}

TEST(JsonParser, RejectsMalformedInput) {
    EXPECT_THROW(parse_json("{\"a\": }"), std::runtime_error);
    EXPECT_THROW(parse_json("{\"a\": 1} trailing"), std::runtime_error);
    EXPECT_THROW(parse_json("[1, 2"), std::runtime_error);
    EXPECT_THROW(parse_json("\"unterminated"), std::runtime_error);
    // Nesting deeper than the stack guard allows.
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    EXPECT_THROW(parse_json(deep), std::runtime_error);
}

TEST(JsonLookup, ResolvesDottedAndIndexedPaths) {
    const JsonValue v =
        parse_json(R"({"sweep": [{"speedup": 1.0}, {"speedup": 0.97}], "a": {"b": 7}})");
    ASSERT_NE(json_lookup(v, "sweep[1].speedup"), nullptr);
    EXPECT_EQ(json_lookup(v, "sweep[1].speedup")->number, 0.97);
    EXPECT_EQ(json_lookup(v, "a.b")->number, 7.0);
    EXPECT_EQ(json_lookup(v, "sweep[2].speedup"), nullptr);
    EXPECT_EQ(json_lookup(v, "a.missing"), nullptr);
    EXPECT_EQ(json_lookup(v, "a[0]"), nullptr);  // object indexed as array
}

// ---------------------------------------------------------------------------
// Gate checker
// ---------------------------------------------------------------------------
TEST(PerfGate, HealthyLedgerPasses) {
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport report =
        check_gates(gates, {{"t8_remote.jsonl", t8_line(0.99)}});
    EXPECT_TRUE(report.ok()) << (report.violations.empty()
                                     ? ""
                                     : report.violations[0].message);
    EXPECT_EQ(report.checks, 4u);
}

TEST(PerfGate, RegressedSpeedupFailsTheGate) {
    // The acceptance case: a synthetic regressed line (remote x1 at half the
    // in-process throughput) must trip the tracked 0.95 threshold.
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport report =
        check_gates(gates, {{"t8_remote.jsonl", t8_line(0.5)}});
    ASSERT_FALSE(report.ok());
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].path, "sweep[1].speedup");
    EXPECT_NE(report.violations[0].message.find("below the gate threshold"),
              std::string::npos);
}

TEST(PerfGate, BrokenContractFailsTheGate) {
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport broken_contract =
        check_gates(gates, {{"t8_remote.jsonl", t8_line(0.99, false)}});
    ASSERT_EQ(broken_contract.violations.size(), 1u);
    EXPECT_EQ(broken_contract.violations[0].path, "contract_ok");

    const GateReport divergent =
        check_gates(gates, {{"t8_remote.jsonl", t8_line(0.99, true, false)}});
    ASSERT_EQ(divergent.violations.size(), 1u);
    EXPECT_EQ(divergent.violations[0].path, "hetero.identical");
}

TEST(PerfGate, ReorderedSweepRowIsCaughtByTheAnchor) {
    // If the bench ever reorders its sweep, the positional speedup path
    // would silently gate the wrong row — the require_eq anchor catches it.
    const JsonValue gates = parse_json(kT8Gates);
    const std::string line =
        "{\"contract_ok\": true, \"sweep\": ["
        "{\"backend\": \"remote x1\", \"speedup\": 0.97}, "
        "{\"backend\": \"in-process x1 (reference)\", \"speedup\": 1}], "
        "\"hetero\": {\"identical\": true}}";
    const GateReport report = check_gates(gates, {{"t8_remote.jsonl", line}});
    ASSERT_FALSE(report.ok());
    EXPECT_EQ(report.violations[0].path, "sweep[1].backend");
}

TEST(PerfGate, MaxCheckGatesLatencyCeilings) {
    // The `max` kind is the mirror of `min`: percentile latency ledger
    // fields must stay BELOW a ceiling. At the threshold passes, above
    // fails, and a missing field is a violation of its own.
    const JsonValue gates = parse_json(
        R"({"t8_remote.jsonl": {"max": {"latency.p99_us": 5000}}})");

    const GateReport healthy = check_gates(
        gates, {{"t8_remote.jsonl", "{\"latency\": {\"p99_us\": 5000}}"}});
    EXPECT_TRUE(healthy.ok()) << (healthy.violations.empty()
                                      ? ""
                                      : healthy.violations[0].message);
    EXPECT_EQ(healthy.checks, 1u);

    const GateReport regressed = check_gates(
        gates, {{"t8_remote.jsonl", "{\"latency\": {\"p99_us\": 5000.5}}"}});
    ASSERT_EQ(regressed.violations.size(), 1u);
    EXPECT_EQ(regressed.violations[0].path, "latency.p99_us");
    EXPECT_NE(regressed.violations[0].message.find("above the gate threshold"),
              std::string::npos);

    const GateReport missing =
        check_gates(gates, {{"t8_remote.jsonl", "{\"latency\": {}}"}});
    ASSERT_EQ(missing.violations.size(), 1u);
    EXPECT_EQ(missing.violations[0].path, "latency.p99_us");
}

TEST(PerfGate, MissingLedgerIsItselfAViolation) {
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport report = check_gates(gates, {});
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].ledger, "t8_remote.jsonl");
    EXPECT_NE(report.violations[0].message.find("missing"), std::string::npos);
}

TEST(PerfGate, UnparseableLedgerLineIsAViolation) {
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport report =
        check_gates(gates, {{"t8_remote.jsonl", "not json at all"}});
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_NE(report.violations[0].message.find("does not parse"),
              std::string::npos);
}

TEST(PerfGate, MissingFieldsAreViolations) {
    const JsonValue gates = parse_json(kT8Gates);
    const GateReport report =
        check_gates(gates, {{"t8_remote.jsonl", "{\"bench\": \"t8_remote\"}"}});
    // All four checks fail: two require_true, the anchor, and the min.
    EXPECT_EQ(report.violations.size(), 4u);
}

#ifdef EHDOE_TRACKED_GATES
// The tracked bench/history/gates.json itself must parse and name only
// well-formed specs — a bad gate file must never reach CI green.
TEST(PerfGate, TrackedGateFileParses) {
    std::ifstream in(EHDOE_TRACKED_GATES);
    ASSERT_TRUE(in) << "cannot open " << EHDOE_TRACKED_GATES;
    std::ostringstream text;
    text << in.rdbuf();
    const JsonValue gates = parse_json(text.str());
    ASSERT_EQ(gates.kind, JsonValue::Kind::Object);
    EXPECT_NE(gates.find("t8_remote.jsonl"), nullptr);
    EXPECT_NE(gates.find("t9_exec.jsonl"), nullptr);
}
#endif
