// DoE experiment runner tests.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>

#include "doe/factorial.hpp"
#include "doe/runner.hpp"

using namespace ehdoe::doe;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation quadratic_sim() {
    return [](const Vector& nat) {
        return std::map<std::string, double>{
            {"f", nat[0] * nat[0] + 2.0 * nat[1]},
            {"g", nat[0] - nat[1]},
        };
    };
}

}  // namespace

TEST(Runner, CollectsResponsesInOrder) {
    const Design d = full_factorial_2level(2);
    const RunResults r = run_design(kSpace, d, quadratic_sim());
    EXPECT_EQ(r.simulations, 4u);
    EXPECT_EQ(r.response_names.size(), 2u);
    EXPECT_EQ(r.responses.rows(), 4u);
    // Check one point: coded (-1,-1) -> natural (0,-5) -> f = -10.
    const auto f = r.response("f");
    bool found = false;
    for (std::size_t i = 0; i < 4; ++i) {
        if (r.natural(i, 0) == 0.0 && r.natural(i, 1) == -5.0) {
            EXPECT_DOUBLE_EQ(f[i], -10.0);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_THROW(r.response("nope"), std::invalid_argument);
}

TEST(Runner, ThreadedMatchesSerial) {
    const Design d = full_factorial(2, 5);  // 25 runs
    RunnerOptions serial;
    RunnerOptions par;
    par.threads = 8;
    const RunResults a = run_design(kSpace, d, quadratic_sim(), serial);
    const RunResults b = run_design(kSpace, d, quadratic_sim(), par);
    EXPECT_TRUE(ehdoe::num::approx_equal(a.responses, b.responses, 0.0));
}

TEST(Runner, ReplicatesAverageNoise) {
    // Deterministic "noise" from an atomic counter: replicates average it.
    std::atomic<int> calls{0};
    const Simulation noisy = [&calls](const Vector&) {
        const int c = calls.fetch_add(1);
        return std::map<std::string, double>{{"y", (c % 2 == 0) ? 1.0 : 3.0}};
    };
    RunnerOptions o;
    o.replicates = 2;
    ehdoe::num::Matrix pts(1, 2);
    const RunResults r = run_points(kSpace, pts, noisy, o);
    EXPECT_EQ(r.simulations, 2u);
    EXPECT_DOUBLE_EQ(r.responses(0, 0), 2.0);
}

TEST(Runner, PropagatesSimulationExceptions) {
    const Simulation bad = [](const Vector&) -> std::map<std::string, double> {
        throw std::runtime_error("boom");
    };
    ehdoe::num::Matrix pts(2, 2);
    EXPECT_THROW(run_points(kSpace, pts, bad), std::runtime_error);
    RunnerOptions par;
    par.threads = 4;
    EXPECT_THROW(run_points(kSpace, pts, bad, par), std::runtime_error);
}

TEST(Runner, RejectsInconsistentResponses) {
    std::atomic<int> calls{0};
    const Simulation flaky = [&calls](const Vector&) {
        if (calls.fetch_add(1) == 0) {
            return std::map<std::string, double>{{"a", 1.0}, {"b", 2.0}};
        }
        return std::map<std::string, double>{{"a", 1.0}};
    };
    // Distinct points: identical ones would (correctly) be served from the
    // memoization cache and never reach the flaky simulation twice.
    ehdoe::num::Matrix pts(2, 2);
    pts(1, 0) = 0.5;
    EXPECT_THROW(run_points(kSpace, pts, flaky), std::runtime_error);
}

TEST(Runner, Validation) {
    ehdoe::num::Matrix pts(2, 3);  // wrong dimension
    EXPECT_THROW(run_points(kSpace, pts, quadratic_sim()), std::invalid_argument);
    ehdoe::num::Matrix ok(2, 2);
    EXPECT_THROW(run_points(kSpace, ok, nullptr), std::invalid_argument);
    RunnerOptions o;
    o.replicates = 0;
    EXPECT_THROW(run_points(kSpace, ok, quadratic_sim(), o), std::invalid_argument);
}

TEST(Runner, WallClockRecorded) {
    const Design d = full_factorial_2level(2);
    const RunResults r = run_design(kSpace, d, quadratic_sim());
    EXPECT_GE(r.wall_seconds, 0.0);
}
