// Malformed-frame hardening: a peer sending an oversized length prefix or a
// frame truncated mid-payload must fail its connection cleanly — no
// allocation blow-up, no hang, no collateral damage to other connections.
// Covers both directions of read_exact/frame decode: hostile client against
// EvalServer, and hostile (fake) server against RemoteBackend.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doe/batch_runner.hpp"
#include "doe/factorial.hpp"
#include "net/eval_server.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"
#include "net_test_utils.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using namespace ehdoe::net_test;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation identity_sim() {
    return [](const Vector& nat) -> std::map<std::string, double> {
        return {{"f", nat[0]}};
    };
}

/// True when the peer closed: recv() returns 0 (EOF) or a hard error, and
/// never blocks forever (the fd has a receive timeout armed).
bool peer_closed(int fd) {
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char byte = 0;
    return ::recv(fd, &byte, 1, 0) <= 0;
}

/// A fake eval-server speaking just enough protocol to hand the client one
/// poisoned response. Accepts one connection, answers the handshake, reads
/// one request, writes `poison` raw bytes, then closes.
class PoisonServer {
public:
    explicit PoisonServer(std::vector<unsigned char> poison) : poison_(std::move(poison)) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(listen_fd_, 0);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
                  0);
        EXPECT_EQ(::listen(listen_fd_, 4), 0);
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = ntohs(bound.sin_port);
        thread_ = std::thread([this] { serve(); });
    }

    ~PoisonServer() {
        ::shutdown(listen_fd_, SHUT_RDWR);
        if (thread_.joinable()) thread_.join();
        ::close(listen_fd_);
    }

    std::uint16_t port() const { return port_; }

private:
    void serve() {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) return;
        net::Hello hello;
        // Echo the hello's version so the welcome has the shape the client
        // expects (a v5 client reads the trailing clock sample).
        if (net::read_hello(fd, hello) &&
            net::write_welcome(fd, net::kStatusOk, "", hello.version)) {
            Vector request;
            if (net::read_request(fd, request)) {
                net::write_all(fd, poison_.data(), poison_.size());
            }
        }
        ::close(fd);
    }

    std::vector<unsigned char> poison_;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::thread thread_;
};

/// Little-endian-of-host u64 appended raw (the wire is host-endian).
void push_u64(std::vector<unsigned char>& bytes, std::uint64_t v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
}

}  // namespace

// ---------------------------------------------------------------------------
// EvalServer side.
// ---------------------------------------------------------------------------
TEST(WireHardening, ServerDropsOversizedRequestDimensionWithoutAllocating) {
    auto server = start_server(identity_sim(), "sim-id");

    const int fd = raw_connect(server->port());
    net::Hello hello;
    hello.fingerprint = "sim-id";
    ASSERT_TRUE(net::write_hello(fd, hello));
    std::uint64_t status = net::kStatusError;
    std::string message;
    std::uint64_t server_now_us = 0;
    ASSERT_TRUE(
        net::read_welcome(fd, status, message, net::kProtocolVersion, &server_now_us));
    ASSERT_EQ(status, net::kStatusOk);

    // A request claiming 2^60 points: the sane-limit check must fail
    // the connection before any allocation is attempted.
    ASSERT_TRUE(net::write_u64(fd, std::uint64_t{1} << 60));
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);

    // The server survives and keeps serving honest clients.
    BatchRunner runner(identity_sim(), remote_options({endpoint_of(*server)}, "sim-id"));
    EXPECT_EQ(runner.run_design(kSpace, doe::full_factorial(2, 2)).simulations, 4u);
    EXPECT_EQ(server->points_served(), 4u);
}

TEST(WireHardening, ServerDropsRequestTruncatedMidFrame) {
    auto server = start_server(identity_sim(), "sim-id");

    const int fd = raw_connect(server->port());
    net::Hello hello;
    hello.fingerprint = "sim-id";
    ASSERT_TRUE(net::write_hello(fd, hello));
    std::uint64_t status = net::kStatusError;
    std::string message;
    std::uint64_t server_now_us = 0;
    ASSERT_TRUE(
        net::read_welcome(fd, status, message, net::kProtocolVersion, &server_now_us));
    ASSERT_EQ(status, net::kStatusOk);

    // Claim two points, deliver a torso, vanish.
    ASSERT_TRUE(net::write_u64(fd, 2));
    const double half = 1.0;
    ASSERT_TRUE(net::write_all(fd, &half, sizeof half));
    ::shutdown(fd, SHUT_WR);
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);

    EXPECT_EQ(server->points_served(), 0u);  // the torso never reached a worker
    EXPECT_TRUE(server->running());
}

TEST(WireHardening, ServerRejectsOversizedHelloFingerprintLength) {
    auto server = start_server(identity_sim(), "sim-id");

    const int fd = raw_connect(server->port());
    // Hand-rolled hello with a fingerprint length beyond any sane frame.
    std::vector<unsigned char> bytes(net::kHandshakeMagic,
                                     net::kHandshakeMagic + sizeof net::kHandshakeMagic);
    const std::uint32_t version = net::kProtocolVersion;
    const auto* vp = reinterpret_cast<const unsigned char*>(&version);
    bytes.insert(bytes.end(), vp, vp + sizeof version);
    push_u64(bytes, std::uint64_t{1} << 58);
    ASSERT_TRUE(net::write_all(fd, bytes.data(), bytes.size()));
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);

    EXPECT_GE(server->handshakes_rejected(), 1u);
    EXPECT_TRUE(server->running());
}

// ---------------------------------------------------------------------------
// RemoteBackend side.
// ---------------------------------------------------------------------------
namespace {

/// Drive one 3-point batch into a PoisonServer and expect the poisoned
/// connection to surface as a clean dead-endpoint error (all shards dead →
/// stranded points error in design order), never a hang or a bad_alloc.
void expect_clean_death(std::vector<unsigned char> poison) {
    PoisonServer server(std::move(poison));
    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint("127.0.0.1:" + std::to_string(server.port()))};
    ro.fingerprint = "";
    ro.redial_seconds = -1.0;
    net::RemoteBackend backend(ro);

    std::vector<Vector> points(3, Vector(2));
    try {
        backend.evaluate(points);
        FAIL() << "expected the poisoned endpoint to fail the batch";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("no live endpoints remain"), std::string::npos)
            << e.what();
    }
    EXPECT_EQ(backend.live_endpoints(), 0u);
}

}  // namespace

TEST(WireHardening, ClientDropsResultWithOversizedResponseCount) {
    std::vector<unsigned char> poison;
    push_u64(poison, net::kStatusOk);
    push_u64(poison, std::uint64_t{1} << 59);  // "this many named responses"
    expect_clean_death(std::move(poison));
}

TEST(WireHardening, ClientDropsResultWithOversizedNameLength) {
    std::vector<unsigned char> poison;
    push_u64(poison, net::kStatusOk);
    push_u64(poison, 1);                       // one response...
    push_u64(poison, std::uint64_t{1} << 59);  // ...whose name "fills" memory
    expect_clean_death(std::move(poison));
}

TEST(WireHardening, ClientDropsResultTruncatedMidFrame) {
    std::vector<unsigned char> poison;
    push_u64(poison, net::kStatusOk);
    push_u64(poison, 1);
    push_u64(poison, 3);
    poison.push_back('a');  // name cut short; the server closes after this
    expect_clean_death(std::move(poison));
}

TEST(WireHardening, ClientDropsResultWithUnknownStatus) {
    std::vector<unsigned char> poison;
    push_u64(poison, 42);  // neither ok nor error
    expect_clean_death(std::move(poison));
}

namespace {

/// Serve one stats connection with a hand-rolled OK reply: the full v4
/// counter body followed by `tail` (a poisoned v5 histogram section), then
/// close. Expects query_shard_stats to fail cleanly — no allocation
/// blow-up, no hang.
void expect_stats_tail_failure(std::vector<unsigned char> tail) {
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(listen_fd, 4), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    const std::uint16_t port = ntohs(bound.sin_port);

    std::thread fake([&] {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        net::ConnectionKind kind;
        std::uint32_t version = 0;
        if (net::read_connection_magic(fd, kind) &&
            net::read_stats_request_body(fd, version)) {
            std::vector<unsigned char> reply;
            push_u64(reply, net::kStatusOk);
            const std::uint32_t served_version = net::kProtocolVersion;
            const auto* vp = reinterpret_cast<const unsigned char*>(&served_version);
            reply.insert(reply.end(), vp, vp + sizeof served_version);
            for (int c = 0; c < 7; ++c) push_u64(reply, 0);  // the counters
            const double uptime = 1.0;
            const auto* up = reinterpret_cast<const unsigned char*>(&uptime);
            reply.insert(reply.end(), up, up + sizeof uptime);
            reply.insert(reply.end(), tail.begin(), tail.end());
            net::write_all(fd, reply.data(), reply.size());
        }
        ::close(fd);
    });

    net::ShardStats stats;
    std::string error;
    EXPECT_FALSE(net::query_shard_stats(
        net::parse_endpoint("127.0.0.1:" + std::to_string(port)), stats, error));
    EXPECT_FALSE(error.empty());
    fake.join();
    ::close(listen_fd);
}

}  // namespace

// A v5 stats reply claiming 2^59 histogram buckets: the bucket-count
// limit must fail the read before any reserve() is attempted.
TEST(WireHardening, StatsReplyWithOversizedHistogramCountFailsCleanly) {
    std::vector<unsigned char> tail;
    push_u64(tail, std::uint64_t{1} << 59);
    expect_stats_tail_failure(std::move(tail));
}

// A bucket index beyond the histogram's own resolution is corrupt, not
// large — rejected on the index field itself.
TEST(WireHardening, StatsReplyWithOutOfRangeBucketIndexFailsCleanly) {
    std::vector<unsigned char> tail;
    push_u64(tail, 1);                          // one bucket...
    push_u64(tail, net::kMaxHistogramBuckets);  // ...at an impossible index
    push_u64(tail, 7);
    expect_stats_tail_failure(std::move(tail));
}

// A histogram section cut short mid-entry fails the read, never hangs.
TEST(WireHardening, StatsReplyTruncatedMidHistogramFailsCleanly) {
    std::vector<unsigned char> tail;
    push_u64(tail, 3);  // claim three buckets, deliver one, vanish
    push_u64(tail, 2);
    push_u64(tail, 5);
    expect_stats_tail_failure(std::move(tail));
}

namespace {

void push_f64(std::vector<unsigned char>& bytes, double v) {
    const auto* p = reinterpret_cast<const unsigned char*>(&v);
    bytes.insert(bytes.end(), p, p + sizeof v);
}

/// A valid-but-empty v5 histogram section (0 buckets, 3 percentiles): the
/// v7 ring poisons below must get *past* the v5 block to prove the ring
/// fields themselves are validated.
std::vector<unsigned char> empty_v5_block() {
    std::vector<unsigned char> bytes;
    bytes.reserve(32);   // 4 fields; also quiets GCC 12's overflow false positive
    push_u64(bytes, 0);  // no histogram buckets
    push_f64(bytes, 0.0);
    push_f64(bytes, 0.0);
    push_f64(bytes, 0.0);
    return bytes;
}

}  // namespace

// A v7 stats reply claiming 2^40 metric series: kMaxMetricSeries must fail
// the read before any allocation.
TEST(WireHardening, StatsReplyWithOversizedMetricSeriesCountFailsCleanly) {
    std::vector<unsigned char> tail = empty_v5_block();
    push_u64(tail, 1'000'000);  // interval_us
    push_u64(tail, 0);          // first_seq
    push_u64(tail, std::uint64_t{1} << 40);
    expect_stats_tail_failure(std::move(tail));
}

// A series name longer than kMaxMetricNameLen is corrupt, not verbose.
TEST(WireHardening, StatsReplyWithOversizedMetricNameFailsCleanly) {
    std::vector<unsigned char> tail = empty_v5_block();
    push_u64(tail, 1'000'000);
    push_u64(tail, 0);
    push_u64(tail, 1);                         // one series...
    push_u64(tail, std::uint64_t{1} << 50);    // ...with an absurd name
    expect_stats_tail_failure(std::move(tail));
}

// More ring rows than kMaxMetricSamples is corrupt — the ring is bounded
// by design.
TEST(WireHardening, StatsReplyWithOversizedMetricRowCountFailsCleanly) {
    std::vector<unsigned char> tail = empty_v5_block();
    push_u64(tail, 1'000'000);
    push_u64(tail, 0);
    push_u64(tail, 1);  // one series, named "s"
    push_u64(tail, 1);
    tail.push_back('s');
    push_u64(tail, net::kMaxMetricSamples + 1);
    expect_stats_tail_failure(std::move(tail));
}

// A ring cut short mid-row fails the read, never hangs.
TEST(WireHardening, StatsReplyTruncatedMidMetricRowFailsCleanly) {
    std::vector<unsigned char> tail = empty_v5_block();
    push_u64(tail, 1'000'000);
    push_u64(tail, 0);
    push_u64(tail, 1);
    push_u64(tail, 1);
    tail.push_back('s');
    push_u64(tail, 3);    // claim three rows...
    push_u64(tail, 555);  // ...deliver one timestamp, vanish
    expect_stats_tail_failure(std::move(tail));
}

// The store stats reply shares the ring codec; its reader must apply the
// same caps. A socketpair is transport enough to poison it directly.
TEST(WireHardening, StoreStatsReplyWithOversizedRingFailsCleanly) {
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    std::vector<unsigned char> poison;
    push_u64(poison, net::kStatusOk);
    for (int c = 0; c < 8; ++c) push_u64(poison, 0);  // the store counters
    push_f64(poison, 1.0);                            // uptime
    push_u64(poison, 1'000'000);                      // ring interval_us
    push_u64(poison, 0);                              // first_seq
    push_u64(poison, std::uint64_t{1} << 40);         // absurd series count
    ASSERT_TRUE(net::write_all(sv[0], poison.data(), poison.size()));
    ::shutdown(sv[0], SHUT_WR);

    net::StoreStats stats;
    std::uint64_t status = net::kStatusError;
    std::string message;
    EXPECT_FALSE(net::read_store_stats_reply(sv[1], status, stats, message, 7));
    ::close(sv[0]);
    ::close(sv[1]);
}

TEST(WireHardening, StatsQueryFailsCleanlyOnOversizedRejectionMessage) {
    // A fake "server" that answers the stats request with an error frame
    // whose message length is absurd: query_shard_stats must return false,
    // not allocate or hang.
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    ASSERT_EQ(::listen(listen_fd, 4), 0);
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len);
    const std::uint16_t port = ntohs(bound.sin_port);

    std::thread fake([&] {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) return;
        net::ConnectionKind kind;
        std::uint32_t version = 0;
        if (net::read_connection_magic(fd, kind) &&
            net::read_stats_request_body(fd, version)) {
            std::vector<unsigned char> poison;
            push_u64(poison, net::kStatusError);
            push_u64(poison, std::uint64_t{1} << 59);
            net::write_all(fd, poison.data(), poison.size());
        }
        ::close(fd);
    });

    net::ShardStats stats;
    std::string error;
    EXPECT_FALSE(net::query_shard_stats(
        net::parse_endpoint("127.0.0.1:" + std::to_string(port)), stats, error));
    EXPECT_FALSE(error.empty());
    fake.join();
    ::close(listen_fd);
}
