// Exec fault-path tests, hermetic via mock_hdl_sim's fault flags: crashes
// mid-batch (design-order error contract, stderr forwarding), bounded
// retry (recovery and budget exhaustion), hang-until-timeout (process
// *group* killed, counted in the stats frame), malformed output, artifact
// retention, and the stdin/output-file recipe modes.
#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "doe/batch_runner.hpp"
#include "exec/exec_backend.hpp"
#include "exec/sim_recipe.hpp"
#include "exec_test_utils.hpp"
#include "net/remote_backend.hpp"
#include "net_test_utils.hpp"

using namespace ehdoe;
using namespace ehdoe::exec;
using ehdoe::exec_test::TempDir;
using ehdoe::num::Vector;

namespace {

namespace fs = std::filesystem;

/// Cheap workload: the S1 model at a 5 s horizon (sub-millisecond); fault
/// behaviour, not simulation content, is under test here.
constexpr double kShortHorizon = 5.0;

ExecBackend make_backend(const std::string& recipe_text, std::size_t threads,
                         std::size_t replicates = 1) {
    core::BackendOptions bo;
    bo.threads = threads;
    bo.replicates = replicates;
    return ExecBackend(SimRecipe::parse(recipe_text), bo);
}

/// True once the pid neither exists nor lingers as anything but a zombie
/// (an orphan's zombie belongs to init; it is dead for our purposes).
bool process_gone(pid_t pid) {
    if (::kill(pid, 0) != 0) return true;
    std::ifstream stat("/proc/" + std::to_string(pid) + "/stat");
    std::string content((std::istreambuf_iterator<char>(stat)),
                        std::istreambuf_iterator<char>());
    const std::size_t paren = content.rfind(')');
    return paren != std::string::npos && paren + 2 < content.size() &&
           content[paren + 2] == 'Z';
}

}  // namespace

TEST(ExecFaults, CrashMidBatchErrorsInDesignOrder) {
    // Indices 2, 5, 8 crash deterministically; the error that surfaces
    // must be the *first* failing point in input order, with the
    // simulator's exit status and stderr diagnosis attached.
    ExecBackend backend =
        make_backend(ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--fail-every 3"), 3);
    try {
        backend.evaluate(ehdoe::exec_test::s1_points(9));
        FAIL() << "expected a propagated simulator crash";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("exited with status 3"), std::string::npos) << what;
        EXPECT_NE(what.find("at point 2"), std::string::npos) << what;
        EXPECT_NE(what.find("synthetic co-simulator crash"), std::string::npos)
            << "stderr tail must reach the error: " << what;
    }
    EXPECT_EQ(backend.timeouts(), 0u);
}

TEST(ExecFaults, BoundedRetryRecoversFromAFlakyLaunch) {
    TempDir dir("ehdoe-exec-retry");
    const std::string marker = (fs::path(dir.path()) / "first-launch-failed").string();

    // Reference result with no faults injected.
    ExecBackend clean = make_backend(ehdoe::exec_test::s1_recipe_text(kShortHorizon), 1);
    const auto expected = clean.evaluate(ehdoe::exec_test::s1_points(1));

    // First launch crashes (creating the marker); the relaunch succeeds.
    ExecBackend flaky = make_backend(
        ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--fail-marker " + marker,
                                         "retries: 1\n"),
        1);
    const auto got = flaky.evaluate(ehdoe::exec_test::s1_points(1));
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], expected[0]) << "recovered result must be bitwise identical";
    EXPECT_EQ(flaky.relaunches(), 1u);
    EXPECT_EQ(flaky.launches(), 2u);
    EXPECT_EQ(flaky.simulations(), 1u);
}

TEST(ExecFaults, RetryBudgetExhaustionIsACleanError) {
    ExecBackend backend = make_backend(
        ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--fail-every 1", "retries: 2\n"), 1);
    try {
        backend.evaluate(ehdoe::exec_test::s1_points(1));
        FAIL() << "expected the retry budget to run out";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("after 3 launch(es)"), std::string::npos)
            << e.what();
    }
    EXPECT_EQ(backend.launches(), 3u);
    EXPECT_EQ(backend.relaunches(), 2u);
}

TEST(ExecFaults, HangTimesOutAndKillsTheProcessGroup) {
    TempDir scratch("ehdoe-exec-hang");
    // keep-artifacts + a pinned scratch dir: the test must find the hung
    // simulator's child pid file after the kill.
    ExecBackend backend = make_backend(
        ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--hang",
                                         "timeout: 0.4\nkeep-artifacts: true\nscratch-dir: " +
                                             scratch.path() + "\n"),
        1);
    const auto t0 = std::chrono::steady_clock::now();
    try {
        backend.evaluate(ehdoe::exec_test::s1_points(1));
        FAIL() << "expected a timeout error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out after"), std::string::npos)
            << e.what();
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    EXPECT_GE(elapsed, 0.4);
    EXPECT_LT(elapsed, 10.0) << "the kill must not wait for the hang to finish";
    EXPECT_EQ(backend.timeouts(), 1u);
    EXPECT_EQ(backend.relaunches(), 0u) << "timeouts are not retried";

    // The simulator forked its own child; killing the *group* must have
    // taken that child down too (give reparenting/reaping a moment).
    pid_t child = -1;
    for (const auto& entry : fs::recursive_directory_iterator(scratch.path())) {
        if (entry.path().filename().string().find(".hangpid") != std::string::npos) {
            std::ifstream in(entry.path());
            in >> child;
        }
    }
    ASSERT_GT(child, 0) << "mock_hdl_sim --hang must publish its child pid";
    bool gone = false;
    for (int i = 0; i < 100 && !gone; ++i) {
        gone = process_gone(child);
        if (!gone) std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_TRUE(gone) << "process-group kill must reach the simulator's children (pid "
                      << child << ")";
}

TEST(ExecFaults, MalformedOutputIsACleanError) {
    ExecBackend backend = make_backend(
        ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--garbage-index 0"), 1);
    try {
        backend.evaluate(ehdoe::exec_test::s1_points(1));
        FAIL() << "expected an extractor error";
    } catch (const std::runtime_error& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("'E_harv' not found"), std::string::npos) << what;
        EXPECT_NE(what.find("corrupted"), std::string::npos)
            << "the output tail must reach the error: " << what;
    }
}

TEST(ExecFaults, ArtifactRetentionFollowsTheRecipe) {
    const auto points = ehdoe::exec_test::s1_points(2);
    {
        // Default: per-point scratch dirs are cleaned as points resolve,
        // and the root dies with the runner.
        TempDir scratch("ehdoe-exec-clean");
        {
            ExecBackend backend = make_backend(
                ehdoe::exec_test::s1_recipe_text(kShortHorizon, "",
                                                 "scratch-dir: " + scratch.path() + "\n"),
                1);
            backend.evaluate(points);
            EXPECT_TRUE(fs::is_empty(scratch.path()))
                << "resolved points must leave no scratch dirs behind";
        }
    }
    {
        TempDir scratch("ehdoe-exec-keep");
        ExecBackend backend = make_backend(
            ehdoe::exec_test::s1_recipe_text(
                kShortHorizon, "",
                "keep-artifacts: true\nscratch-dir: " + scratch.path() + "\n"),
            1);
        backend.evaluate(points);
        std::size_t decks = 0, stdouts = 0;
        for (const auto& entry : fs::recursive_directory_iterator(scratch.path())) {
            if (entry.path().filename() == "deck.txt") ++decks;
            if (entry.path().filename() == "stdout.txt") ++stdouts;
        }
        EXPECT_EQ(decks, 2u) << "keep-artifacts must retain every rendered deck";
        EXPECT_EQ(stdouts, 2u) << "keep-artifacts must retain every output capture";
    }
}

TEST(ExecFaults, StdinAndOutputFileModesWork) {
    // The mock reads its deck from stdin when no --deck is given, and
    // writes responses to --output; drive both recipe modes at once.
    const std::string recipe_text =
        "command: " + ehdoe::exec_test::mock_path() +
        " --output result.out\n"
        "input: stdin\n"
        "deck-line: scenario S1\n"
        "deck-line: duration " +
        std::to_string(kShortHorizon) +
        "\n"
        "deck-line: point {point}\n"
        "output: file result.out\n"
        "extract: E_harv regex ^E_harv=(\\S+)$\n"
        "extract: packets column values 6\n";
    ExecBackend backend = make_backend(recipe_text, 2);
    ExecBackend reference =
        make_backend(ehdoe::exec_test::s1_recipe_text(kShortHorizon), 1);

    const auto points = ehdoe::exec_test::s1_points(3);
    const auto got = backend.evaluate(points);
    const auto expected = reference.evaluate(points);
    ASSERT_EQ(got.size(), 3u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].at("E_harv"), expected[i].at("E_harv")) << "point " << i;
        EXPECT_EQ(got[i].at("packets"), expected[i].at("packets")) << "point " << i;
        EXPECT_EQ(got[i].size(), 2u) << "only the recipe's extractors are returned";
    }
}

TEST(ExecFaults, CrlfSimulatorOutputParsesIdentically) {
    // A Windows-style co-simulator terminates every line with \r\n. The
    // runner's line splitter must strip the \r — otherwise the
    // $-anchored regex extractors miss every NAME=VALUE line and the
    // column extractor's last token grows a trailing \r.
    ExecBackend crlf = make_backend(
        ehdoe::exec_test::s1_recipe_text(kShortHorizon, "--crlf"), 2);
    ExecBackend reference = make_backend(ehdoe::exec_test::s1_recipe_text(kShortHorizon), 1);

    const auto points = ehdoe::exec_test::s1_points(3);
    const auto got = crlf.evaluate(points);
    const auto expected = reference.evaluate(points);
    ASSERT_EQ(got.size(), expected.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "CRLF output must parse bitwise identical to LF output (point " << i << ")";
    }
}

TEST(ExecFaults, ReplicatesAverageLikeEveryBackend) {
    // The mock is deterministic; what is asserted here is the launch
    // accounting (values are cross-backend-identical by construction: the
    // runner uses the exact replicate arithmetic of simulate_replicated).
    ExecBackend backend = make_backend(ehdoe::exec_test::s1_recipe_text(kShortHorizon), 1, 3);
    const auto got = backend.evaluate(ehdoe::exec_test::s1_points(2));
    EXPECT_EQ(backend.launches(), 6u);
    EXPECT_EQ(backend.simulations(), 6u);
    ASSERT_EQ(got.size(), 2u);
}

// ---------------------------------------------------------------------------
// Exec faults through an eval-server shard: the farm's monitoring must see
// them (points_timed_out / respawns in the stats frame), and a timed-out
// point must answer *its* request with an error, not poison the shard.
// ---------------------------------------------------------------------------
TEST(ExecServerFaults, TimeoutIsCountedInTheStatsFrame) {
    net::EvalServerOptions so;
    so.workers = 2;
    so.fingerprint = "exec-fault-shard";
    // Index 0 (the first point the server dispatches) hangs; the rest of
    // the batch completes normally.
    so.recipe = SimRecipe::parse(ehdoe::exec_test::s1_recipe_text(
        kShortHorizon, "--hang-index 0", "timeout: 0.4\n"));
    net::EvalServer server(core::Simulation{}, so);
    server.start();

    doe::RunnerOptions ro;
    ro.endpoints = {net_test::endpoint_of(server)};
    ro.cache_fingerprint = "exec-fault-shard";
    doe::BatchRunner runner(doe::Simulation{}, ro);
    try {
        runner.evaluate(ehdoe::exec_test::s1_points(4));
        FAIL() << "expected the timed-out point's error to propagate";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
    }

    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(net::parse_endpoint(net_test::endpoint_of(server)),
                                       stats, error))
        << "the shard must stay up after a timeout: " << error;
    EXPECT_EQ(stats.points_timed_out, 1u);
    EXPECT_EQ(stats.points_failed, 1u);
    EXPECT_EQ(stats.points_served, 3u) << "the other points must still be served";
    EXPECT_EQ(stats.in_flight, 0u);

    // The shard remains serviceable: a fresh batch (indices past the
    // hang) completes cleanly.
    const auto again = doe::BatchRunner(doe::Simulation{}, ro)
                           .evaluate(ehdoe::exec_test::s1_points(2));
    EXPECT_EQ(again.size(), 2u);
    server.stop();
}

TEST(ExecServerFaults, RelaunchesReportAsRespawns) {
    TempDir dir("ehdoe-exec-respawn");
    const std::string marker = (fs::path(dir.path()) / "flaky-marker").string();
    net::EvalServerOptions so;
    so.workers = 1;
    so.fingerprint = "exec-respawn-shard";
    so.recipe = SimRecipe::parse(ehdoe::exec_test::s1_recipe_text(
        kShortHorizon, "--fail-marker " + marker, "retries: 1\n"));
    net::EvalServer server(core::Simulation{}, so);
    server.start();

    doe::RunnerOptions ro;
    ro.endpoints = {net_test::endpoint_of(server)};
    ro.cache_fingerprint = "exec-respawn-shard";
    const auto got =
        doe::BatchRunner(doe::Simulation{}, ro).evaluate(ehdoe::exec_test::s1_points(2));
    EXPECT_EQ(got.size(), 2u);

    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(net::parse_endpoint(net_test::endpoint_of(server)),
                                       stats, error))
        << error;
    EXPECT_EQ(stats.worker_respawns, 1u)
        << "an exec relaunch must report as a respawn in the stats frame";
    EXPECT_EQ(stats.points_served, 2u);
    EXPECT_EQ(stats.points_failed, 0u);
    server.stop();
}
