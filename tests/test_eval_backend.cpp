// Evaluation-backend layer tests: cross-backend bitwise equivalence on the
// S1 CCD, persistent-cache round-trip/invalidation/corruption recovery, and
// subprocess failure semantics (sim errors and worker crashes surface as
// clean errors in design order).
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/eval_backend.hpp"
#include "core/persistent_cache.hpp"
#include "core/scenario.hpp"
#include "core/subprocess_backend.hpp"
#include "core/toolkit.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/factorial.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation transcendental_sim() {
    // Deliberately irrational arithmetic: bitwise comparisons below would
    // catch any reordering of floating-point work across backends.
    return [](const Vector& nat) {
        const double x = nat[0], y = nat[1];
        return std::map<std::string, double>{
            {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
            {"g", std::cos(x * y) / (1.0 + x * x)},
        };
    };
}

/// A scratch file path that dies with the test.
class TempFile {
public:
    explicit TempFile(const std::string& stem) {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + ".ehcache"))
                    .string();
        std::remove(path_.c_str());
    }
    ~TempFile() {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

RunnerOptions with(core::BackendKind kind, std::size_t workers) {
    RunnerOptions o;
    o.backend = kind;
    o.threads = workers;
    return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cross-backend equivalence on the real scenario (the acceptance criterion):
// the S1 CCD's responses are bitwise identical across InProcess (1 and N
// threads), Subprocess, and a cold+warm persistent cache — and the warm run
// is simulation-free.
// ---------------------------------------------------------------------------
TEST(EvalBackendEquivalence, S1CcdBitwiseIdenticalAcrossBackends) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());
    TempFile cache("ehdoe-equiv");

    const RunResults base =
        BatchRunner(sc.make_simulation(), with(core::BackendKind::InProcess, 1))
            .run_design(space, ccd);
    EXPECT_EQ(base.design.runs(), 48u);
    EXPECT_EQ(base.simulations, 45u);  // 4 centre replicates, 3 from the cache
    EXPECT_EQ(base.cache_hits, 3u);

    {
        const RunResults threaded =
            BatchRunner(sc.make_simulation(), with(core::BackendKind::InProcess, 4))
                .run_design(space, ccd);
        EXPECT_EQ(threaded.response_names, base.response_names);
        EXPECT_TRUE(num::approx_equal(threaded.responses, base.responses, 0.0));
    }
    {
        const RunResults forked =
            BatchRunner(sc.make_simulation(), with(core::BackendKind::Subprocess, 2))
                .run_design(space, ccd);
        EXPECT_EQ(forked.response_names, base.response_names);
        EXPECT_TRUE(num::approx_equal(forked.responses, base.responses, 0.0));
        EXPECT_EQ(forked.simulations, 45u);
    }
    {
        // Cold persistent run populates the snapshot on destruction...
        RunnerOptions o = with(core::BackendKind::InProcess, 2);
        o.cache_file = cache.path();
        o.cache_fingerprint = sc.fingerprint();
        const RunResults cold =
            BatchRunner(sc.make_simulation(), o).run_design(space, ccd);
        EXPECT_TRUE(num::approx_equal(cold.responses, base.responses, 0.0));
        EXPECT_EQ(cold.simulations, 45u);
    }
    {
        // ...and the warm run (a fresh runner: a new process in real use)
        // serves the whole design without a single simulation.
        RunnerOptions o = with(core::BackendKind::InProcess, 2);
        o.cache_file = cache.path();
        o.cache_fingerprint = sc.fingerprint();
        BatchRunner warm(sc.make_simulation(), o);
        const RunResults r = warm.run_design(space, ccd);
        EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
        EXPECT_EQ(r.simulations, 0u);
        EXPECT_EQ(r.cache_hits, ccd.runs());
    }
}

// ---------------------------------------------------------------------------
// Subprocess backend
// ---------------------------------------------------------------------------
TEST(SubprocessBackend, MatchesInProcessBitwise) {
    const Design d = full_factorial(2, 7);  // 49 distinct points
    const RunResults base = BatchRunner(transcendental_sim()).run_design(kSpace, d);
    const RunResults sub =
        BatchRunner(transcendental_sim(), with(core::BackendKind::Subprocess, 3))
            .run_design(kSpace, d);
    EXPECT_TRUE(num::approx_equal(sub.responses, base.responses, 0.0));
    EXPECT_EQ(sub.simulations, 49u);
}

TEST(SubprocessBackend, ReplicatesAverageInWorkers) {
    RunnerOptions o = with(core::BackendKind::Subprocess, 2);
    o.replicates = 3;
    BatchRunner runner(transcendental_sim(), o);
    num::Matrix pts(2, 2);
    pts(1, 0) = 4.0;
    const RunResults r = runner.run_points(kSpace, pts);
    EXPECT_EQ(r.simulations, 6u);  // 2 points x 3 replicates, counted raw
}

TEST(SubprocessBackend, ProgressReportsEveryPoint) {
    RunnerOptions o = with(core::BackendKind::Subprocess, 2);
    std::atomic<std::size_t> reports{0};
    std::atomic<std::size_t> last_done{0};
    o.on_batch = [&](const BatchProgress& p) {
        reports.fetch_add(1);
        last_done.store(p.points_done);
        EXPECT_EQ(p.points_total, 9u);
        EXPECT_GE(p.elapsed_seconds, 0.0);
    };
    BatchRunner runner(transcendental_sim(), o);
    runner.run_design(kSpace, full_factorial(2, 3));  // 9 distinct points
    EXPECT_EQ(reports.load(), 9u);
    EXPECT_EQ(last_done.load(), 9u);
}

TEST(SubprocessBackend, SimulationErrorArrivesInDesignOrder) {
    const Simulation failing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 7.0) throw std::invalid_argument("diverged hard");
        return {{"f", nat[0]}};
    };
    BatchRunner runner(failing, with(core::BackendKind::Subprocess, 2));
    const Design d = full_factorial(2, 4);  // natural x spans 0..10
    try {
        runner.run_design(kSpace, d);
        FAIL() << "expected a propagated simulation error";
    } catch (const std::runtime_error& e) {
        // The worker's message crosses the process boundary.
        EXPECT_NE(std::string(e.what()).find("diverged hard"), std::string::npos) << e.what();
    }
    // A failed run commits nothing to the memo cache.
    EXPECT_EQ(runner.cache_size(), 0u);
}

TEST(SubprocessBackend, WorkerCrashIsACleanError) {
    // The worker process dies outright (simulating a crashed external HDL
    // co-simulation); the parent reports it instead of hanging or dying.
    // Exactly one lethal point (natural (10, 5)): at most one worker dies.
    const Simulation crashing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 9.0 && nat[1] > 4.9) ::_exit(3);
        return {{"f", nat[0] + nat[1]}};
    };
    core::BackendOptions bo;
    bo.threads = 2;
    auto backend = std::make_shared<core::SubprocessBackend>(crashing, bo);
    BatchRunner runner(backend);
    const Design d = full_factorial(2, 5);
    try {
        runner.run_design(kSpace, d);
        FAIL() << "expected a worker-crash error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("died while evaluating point"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_LT(backend->live_workers(), 2u);

    // Surviving workers keep serving points that avoid the crash.
    ASSERT_GE(backend->live_workers(), 1u);
    num::Matrix safe(1, 2);  // coded (0,0) -> natural (5,0)
    const RunResults ok = runner.run_points(kSpace, safe);
    EXPECT_DOUBLE_EQ(ok.responses(0, 0), 5.0);
}

// ---------------------------------------------------------------------------
// Persistent cache
// ---------------------------------------------------------------------------
TEST(PersistentCache, RoundTripAcrossBackendInstances) {
    TempFile cache("ehdoe-roundtrip");
    const Design d = full_factorial(2, 3);  // 9 points
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";

    const RunResults cold = BatchRunner(transcendental_sim(), o).run_design(kSpace, d);
    EXPECT_EQ(cold.simulations, 9u);

    BatchRunner warm(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_TRUE(layer->restored());
    EXPECT_EQ(layer->size(), 9u);
    const RunResults again = warm.run_design(kSpace, d);
    EXPECT_EQ(again.simulations, 0u);
    EXPECT_EQ(again.cache_hits, 9u);
    EXPECT_TRUE(num::approx_equal(again.responses, cold.responses, 0.0));
}

TEST(PersistentCache, FingerprintMismatchInvalidates) {
    TempFile cache("ehdoe-fingerprint");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    // Same file, different simulation identity: the snapshot must not leak.
    o.cache_fingerprint = "sim-B";
    BatchRunner mismatched(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&mismatched.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = mismatched.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 9u);
}

TEST(PersistentCache, ReplicateCountIsPartOfTheIdentity) {
    // Entries are replicate-averaged: a run with a different replicate
    // count must not silently reuse them.
    TempFile cache("ehdoe-replicates");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    o.replicates = 2;
    BatchRunner rerun(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&rerun.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = rerun.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 18u);  // 9 points x 2 replicates, all fresh
}

TEST(PersistentCache, CorruptFileRecoversCold) {
    TempFile cache("ehdoe-corrupt");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    // Truncate the snapshot mid-entry: load must treat it as cold, not die.
    {
        std::ifstream in(cache.path(), std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 40u);
        std::ofstream out(cache.path(), std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    }
    BatchRunner recovered(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&recovered.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = recovered.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 9u);

    // Garbage that is not even a header recovers the same way.
    {
        std::ofstream out(cache.path(), std::ios::binary | std::ios::trunc);
        out << "not a cache file at all";
    }
    BatchRunner garbage(transcendental_sim(), o);
    const RunResults g = garbage.run_design(kSpace, d);
    EXPECT_EQ(g.simulations, 9u);
}

TEST(PersistentCache, ThrowingInnerCommitsNothing) {
    TempFile cache("ehdoe-throwing");
    const Simulation bad = [](const Vector&) -> std::map<std::string, double> {
        throw std::runtime_error("boom");
    };
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    {
        BatchRunner runner(bad, o);
        num::Matrix pts(2, 2);
        pts(1, 0) = 0.5;
        EXPECT_THROW(runner.run_points(kSpace, pts), std::runtime_error);
        EXPECT_TRUE(runner.save_cache());
    }
    BatchRunner warm(bad, o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_EQ(layer->size(), 0u);
}

// ---------------------------------------------------------------------------
// DesignFlow-level wiring
// ---------------------------------------------------------------------------
TEST(DesignFlowBackends, WarmPersistentFlowIsSimulationFree) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    TempFile cache("ehdoe-flow");

    core::DesignFlow::Options o;
    o.runner_threads = 2;
    o.cache_file = cache.path();
    o.cache_fingerprint = sc.fingerprint();

    double cold_prediction = 0.0;
    {
        core::DesignFlow flow(sc.design_space(), sc.make_simulation(), o);
        flow.run_ccd();
        cold_prediction = flow.surface(core::kRespPackets).value(num::Vector(6));
        EXPECT_EQ(flow.batch_stats().simulations, 45u);
    }
    {
        core::DesignFlow flow(sc.design_space(), sc.make_simulation(), o);
        flow.run_ccd();
        EXPECT_EQ(flow.batch_stats().simulations, 0u);
        EXPECT_EQ(flow.batch_stats().cache_hits, 48u);
        EXPECT_DOUBLE_EQ(flow.surface(core::kRespPackets).value(num::Vector(6)),
                         cold_prediction);
    }
}
