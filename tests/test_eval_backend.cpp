// Evaluation-backend layer tests: cross-backend bitwise equivalence on the
// S1 CCD, persistent-cache round-trip/invalidation/corruption recovery, and
// subprocess failure semantics (sim errors and worker crashes surface as
// clean errors in design order).
#include <gtest/gtest.h>

#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/eval_backend.hpp"
#include "core/persistent_cache.hpp"
#include "core/scenario.hpp"
#include "core/subprocess_backend.hpp"
#include "core/toolkit.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/factorial.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation transcendental_sim() {
    // Deliberately irrational arithmetic: bitwise comparisons below would
    // catch any reordering of floating-point work across backends.
    return [](const Vector& nat) {
        const double x = nat[0], y = nat[1];
        return std::map<std::string, double>{
            {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
            {"g", std::cos(x * y) / (1.0 + x * x)},
        };
    };
}

/// A scratch file path that dies with the test.
class TempFile {
public:
    explicit TempFile(const std::string& stem) {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + ".ehcache"))
                    .string();
        std::remove(path_.c_str());
    }
    ~TempFile() {
        std::remove(path_.c_str());
        std::remove((path_ + ".tmp").c_str());
        std::remove((path_ + ".lock").c_str());
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

RunnerOptions with(core::BackendKind kind, std::size_t workers) {
    RunnerOptions o;
    o.backend = kind;
    o.threads = workers;
    return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// Cross-backend equivalence on the real scenario (the acceptance criterion):
// the S1 CCD's responses are bitwise identical across InProcess (1 and N
// threads), Subprocess, and a cold+warm persistent cache — and the warm run
// is simulation-free.
// ---------------------------------------------------------------------------
TEST(EvalBackendEquivalence, S1CcdBitwiseIdenticalAcrossBackends) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());
    TempFile cache("ehdoe-equiv");

    const RunResults base =
        BatchRunner(sc.make_simulation(), with(core::BackendKind::InProcess, 1))
            .run_design(space, ccd);
    EXPECT_EQ(base.design.runs(), 48u);
    EXPECT_EQ(base.simulations, 45u);  // 4 centre replicates, 3 from the cache
    EXPECT_EQ(base.cache_hits, 3u);

    {
        const RunResults threaded =
            BatchRunner(sc.make_simulation(), with(core::BackendKind::InProcess, 4))
                .run_design(space, ccd);
        EXPECT_EQ(threaded.response_names, base.response_names);
        EXPECT_TRUE(num::approx_equal(threaded.responses, base.responses, 0.0));
    }
    {
        const RunResults forked =
            BatchRunner(sc.make_simulation(), with(core::BackendKind::Subprocess, 2))
                .run_design(space, ccd);
        EXPECT_EQ(forked.response_names, base.response_names);
        EXPECT_TRUE(num::approx_equal(forked.responses, base.responses, 0.0));
        EXPECT_EQ(forked.simulations, 45u);
    }
    {
        // Cold persistent run populates the snapshot on destruction...
        RunnerOptions o = with(core::BackendKind::InProcess, 2);
        o.cache_file = cache.path();
        o.cache_fingerprint = sc.fingerprint();
        const RunResults cold =
            BatchRunner(sc.make_simulation(), o).run_design(space, ccd);
        EXPECT_TRUE(num::approx_equal(cold.responses, base.responses, 0.0));
        EXPECT_EQ(cold.simulations, 45u);
    }
    {
        // ...and the warm run (a fresh runner: a new process in real use)
        // serves the whole design without a single simulation.
        RunnerOptions o = with(core::BackendKind::InProcess, 2);
        o.cache_file = cache.path();
        o.cache_fingerprint = sc.fingerprint();
        BatchRunner warm(sc.make_simulation(), o);
        const RunResults r = warm.run_design(space, ccd);
        EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
        EXPECT_EQ(r.simulations, 0u);
        EXPECT_EQ(r.cache_hits, ccd.runs());
    }
}

// ---------------------------------------------------------------------------
// Subprocess backend
// ---------------------------------------------------------------------------
TEST(SubprocessBackend, MatchesInProcessBitwise) {
    const Design d = full_factorial(2, 7);  // 49 distinct points
    const RunResults base = BatchRunner(transcendental_sim()).run_design(kSpace, d);
    const RunResults sub =
        BatchRunner(transcendental_sim(), with(core::BackendKind::Subprocess, 3))
            .run_design(kSpace, d);
    EXPECT_TRUE(num::approx_equal(sub.responses, base.responses, 0.0));
    EXPECT_EQ(sub.simulations, 49u);
}

TEST(SubprocessBackend, ReplicatesAverageInWorkers) {
    RunnerOptions o = with(core::BackendKind::Subprocess, 2);
    o.replicates = 3;
    BatchRunner runner(transcendental_sim(), o);
    num::Matrix pts(2, 2);
    pts(1, 0) = 4.0;
    const RunResults r = runner.run_points(kSpace, pts);
    EXPECT_EQ(r.simulations, 6u);  // 2 points x 3 replicates, counted raw
}

TEST(SubprocessBackend, ProgressReportsEveryPoint) {
    RunnerOptions o = with(core::BackendKind::Subprocess, 2);
    std::atomic<std::size_t> reports{0};
    std::atomic<std::size_t> last_done{0};
    o.on_batch = [&](const BatchProgress& p) {
        reports.fetch_add(1);
        last_done.store(p.points_done);
        EXPECT_EQ(p.points_total, 9u);
        EXPECT_GE(p.elapsed_seconds, 0.0);
    };
    BatchRunner runner(transcendental_sim(), o);
    runner.run_design(kSpace, full_factorial(2, 3));  // 9 distinct points
    EXPECT_EQ(reports.load(), 9u);
    EXPECT_EQ(last_done.load(), 9u);
}

TEST(SubprocessBackend, SimulationErrorArrivesInDesignOrder) {
    const Simulation failing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 7.0) throw std::invalid_argument("diverged hard");
        return {{"f", nat[0]}};
    };
    BatchRunner runner(failing, with(core::BackendKind::Subprocess, 2));
    const Design d = full_factorial(2, 4);  // natural x spans 0..10
    try {
        runner.run_design(kSpace, d);
        FAIL() << "expected a propagated simulation error";
    } catch (const std::runtime_error& e) {
        // The worker's message crosses the process boundary.
        EXPECT_NE(std::string(e.what()).find("diverged hard"), std::string::npos) << e.what();
    }
    // A failed run commits nothing to the memo cache.
    EXPECT_EQ(runner.cache_size(), 0u);
}

TEST(SubprocessBackend, WorkerCrashIsACleanError) {
    // The worker process dies outright (simulating a crashed external HDL
    // co-simulation); the parent reports it instead of hanging or dying.
    // Exactly one lethal point (natural (10, 5)): at most one worker dies.
    const Simulation crashing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 9.0 && nat[1] > 4.9) ::_exit(3);
        return {{"f", nat[0] + nat[1]}};
    };
    core::BackendOptions bo;
    bo.threads = 2;
    auto backend = std::make_shared<core::SubprocessBackend>(crashing, bo);
    BatchRunner runner(backend);
    const Design d = full_factorial(2, 5);
    try {
        runner.run_design(kSpace, d);
        FAIL() << "expected a worker-crash error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("died while evaluating point"),
                  std::string::npos)
            << e.what();
    }
    EXPECT_LT(backend->live_workers(), 2u);

    // Surviving workers keep serving points that avoid the crash.
    ASSERT_GE(backend->live_workers(), 1u);
    num::Matrix safe(1, 2);  // coded (0,0) -> natural (5,0)
    const RunResults ok = runner.run_points(kSpace, safe);
    EXPECT_DOUBLE_EQ(ok.responses(0, 0), 5.0);
}

TEST(SubprocessBackend, CrashedWorkerRespawnsAtNextEvaluate) {
    // A worker killed by a point is replaced at the start of the next
    // evaluate() while the respawn budget lasts, so long runs keep their
    // parallelism instead of decaying to serial.
    const Simulation crashing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 9.0 && nat[1] > 4.9) ::_exit(3);
        return {{"f", nat[0] + nat[1]}};
    };
    core::BackendOptions bo;
    bo.threads = 2;
    bo.worker_respawns = 2;
    auto backend = std::make_shared<core::SubprocessBackend>(crashing, bo);
    BatchRunner runner(backend);

    EXPECT_THROW(runner.run_design(kSpace, full_factorial(2, 5)), std::runtime_error);
    EXPECT_EQ(backend->live_workers(), 1u);  // the crash itself still costs the batch

    num::Matrix safe(1, 2);  // coded (0,0) -> natural (5,0)
    const RunResults ok = runner.run_points(kSpace, safe);
    EXPECT_DOUBLE_EQ(ok.responses(0, 0), 5.0);
    EXPECT_EQ(backend->live_workers(), 2u);  // pool is whole again
    EXPECT_EQ(backend->respawns(), 1u);
}

TEST(SubprocessBackend, RespawnBudgetExhaustsToRetirement) {
    const Simulation crashing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 9.0) ::_exit(3);
        return {{"f", nat[0]}};
    };
    core::BackendOptions bo;
    bo.threads = 1;
    bo.worker_respawns = 1;
    auto backend = std::make_shared<core::SubprocessBackend>(crashing, bo);
    RunnerOptions ro;
    ro.memoize = false;  // every call must reach the backend
    BatchRunner runner(backend, ro);

    num::Matrix lethal(1, 2);
    lethal(0, 0) = 1.0;  // coded +1 -> natural x = 10
    num::Matrix safe(1, 2);

    EXPECT_THROW(runner.run_points(kSpace, lethal), std::runtime_error);
    EXPECT_EQ(backend->live_workers(), 0u);

    // One respawn left: the next evaluate restores the pool...
    EXPECT_NO_THROW(runner.run_points(kSpace, safe));
    EXPECT_EQ(backend->respawns(), 1u);

    // ...but after the budget is spent, a second crash retires it for good.
    EXPECT_THROW(runner.run_points(kSpace, lethal), std::runtime_error);
    EXPECT_EQ(backend->live_workers(), 0u);
    try {
        runner.run_points(kSpace, safe);
        FAIL() << "expected a no-live-workers error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("no live workers"), std::string::npos) << e.what();
    }
}

// ---------------------------------------------------------------------------
// Persistent cache
// ---------------------------------------------------------------------------
TEST(PersistentCache, RoundTripAcrossBackendInstances) {
    TempFile cache("ehdoe-roundtrip");
    const Design d = full_factorial(2, 3);  // 9 points
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";

    const RunResults cold = BatchRunner(transcendental_sim(), o).run_design(kSpace, d);
    EXPECT_EQ(cold.simulations, 9u);

    BatchRunner warm(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_TRUE(layer->restored());
    EXPECT_EQ(layer->size(), 9u);
    const RunResults again = warm.run_design(kSpace, d);
    EXPECT_EQ(again.simulations, 0u);
    EXPECT_EQ(again.cache_hits, 9u);
    EXPECT_TRUE(num::approx_equal(again.responses, cold.responses, 0.0));
}

TEST(PersistentCache, FingerprintMismatchInvalidates) {
    TempFile cache("ehdoe-fingerprint");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    // Same file, different simulation identity: the snapshot must not leak.
    o.cache_fingerprint = "sim-B";
    BatchRunner mismatched(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&mismatched.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = mismatched.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 9u);
}

TEST(PersistentCache, ReplicateCountIsPartOfTheIdentity) {
    // Entries are replicate-averaged: a run with a different replicate
    // count must not silently reuse them.
    TempFile cache("ehdoe-replicates");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    o.replicates = 2;
    BatchRunner rerun(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&rerun.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = rerun.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 18u);  // 9 points x 2 replicates, all fresh
}

TEST(PersistentCache, CorruptFileRecoversCold) {
    TempFile cache("ehdoe-corrupt");
    const Design d = full_factorial(2, 3);
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    BatchRunner(transcendental_sim(), o).run_design(kSpace, d);

    // Truncate the snapshot mid-entry: load must treat it as cold, not die.
    {
        std::ifstream in(cache.path(), std::ios::binary);
        std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
        ASSERT_GT(bytes.size(), 40u);
        std::ofstream out(cache.path(), std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
    }
    BatchRunner recovered(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&recovered.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_FALSE(layer->restored());
    const RunResults r = recovered.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 9u);

    // Garbage that is not even a header recovers the same way.
    {
        std::ofstream out(cache.path(), std::ios::binary | std::ios::trunc);
        out << "not a cache file at all";
    }
    BatchRunner garbage(transcendental_sim(), o);
    const RunResults g = garbage.run_design(kSpace, d);
    EXPECT_EQ(g.simulations, 9u);
}

TEST(PersistentCache, ThrowingInnerCommitsNothing) {
    TempFile cache("ehdoe-throwing");
    const Simulation bad = [](const Vector&) -> std::map<std::string, double> {
        throw std::runtime_error("boom");
    };
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";
    {
        BatchRunner runner(bad, o);
        num::Matrix pts(2, 2);
        pts(1, 0) = 0.5;
        EXPECT_THROW(runner.run_points(kSpace, pts), std::runtime_error);
        EXPECT_TRUE(runner.save_cache());
    }
    BatchRunner warm(bad, o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_EQ(layer->size(), 0u);
}

TEST(PersistentCache, SaveMergesEntriesAlreadyOnDisk) {
    // Two runners sharing one snapshot file as their result store: the
    // second save must fold in what the first wrote, not clobber it.
    TempFile cache("ehdoe-merge");
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";

    BatchRunner a(transcendental_sim(), o);  // both constructed cold:
    BatchRunner b(transcendental_sim(), o);  // neither sees the other's work
    num::Matrix pts_a(2, 2);  // coded (0,0), (1,0) -> natural (5,0), (10,0)
    pts_a(1, 0) = 1.0;
    num::Matrix pts_b(2, 2);  // coded (0,1), (0,-1) -> natural (5,5), (5,-5)
    pts_b(0, 1) = 1.0;
    pts_b(1, 1) = -1.0;
    a.run_points(kSpace, pts_a);
    b.run_points(kSpace, pts_b);
    EXPECT_TRUE(a.save_cache());  // file = A's 2 entries
    EXPECT_TRUE(b.save_cache());  // file = A ∪ B, not just B

    BatchRunner warm(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_TRUE(layer->restored());
    EXPECT_EQ(layer->size(), 4u);
    warm.run_points(kSpace, pts_a);
    warm.run_points(kSpace, pts_b);
    EXPECT_EQ(warm.stats().simulations, 0u);
}

TEST(PersistentCache, TwoProcessesSharingOneSnapshotConverge) {
    // A second *process* (a real fork, as in two CLI runs racing) saving to
    // the same cache file: the snapshot ends up holding both processes'
    // entries, and a third run simulates nothing.
    TempFile cache("ehdoe-twoproc");
    RunnerOptions o;
    o.cache_file = cache.path();
    o.cache_fingerprint = "sim-A";

    {
        BatchRunner parent_runner(transcendental_sim(), o);
        parent_runner.run_design(kSpace, full_factorial(2, 2));  // the 4 corners
        ASSERT_TRUE(parent_runner.save_cache());
    }

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child process: warm-load, add the 5 non-corner points of the 3^2
        // grid, save. _exit so gtest state never doubles up.
        BatchRunner child_runner(transcendental_sim(), o);
        child_runner.run_design(kSpace, full_factorial(2, 3));
        ::_exit(child_runner.save_cache() ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);

    BatchRunner warm(transcendental_sim(), o);
    auto* layer = dynamic_cast<const core::PersistentCache*>(&warm.backend());
    ASSERT_NE(layer, nullptr);
    EXPECT_TRUE(layer->restored());
    EXPECT_EQ(layer->size(), 9u);
    const RunResults r = warm.run_design(kSpace, full_factorial(2, 3));
    EXPECT_EQ(r.simulations, 0u);
}

TEST(PersistentCache, ConcurrentSaversNeverCorruptTheSnapshot) {
    // Two processes hammering save() on one path: the atomic per-process
    // tmp+rename means every load observes a complete snapshot — a reader
    // may see either writer's latest, never a torn file.
    TempFile cache("ehdoe-racing");
    const std::string fp = "sim-A";
    const Simulation plain = [](const Vector& nat) -> std::map<std::string, double> {
        return {{"f", nat[0] + nat[1]}};
    };

    constexpr int kChildren = 2;
    constexpr int kSaves = 20;
    std::vector<pid_t> children;
    for (int c = 0; c < kChildren; ++c) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            core::BackendOptions bo;
            auto inner = core::make_backend(plain, core::BackendKind::InProcess, bo);
            core::PersistentCache mine(inner, cache.path(), fp, false);
            std::vector<Vector> points;
            for (int i = 0; i < 5; ++i) {
                points.push_back(Vector{static_cast<double>(i), 100.0 * (c + 1)});
            }
            mine.evaluate(points);
            bool ok = true;
            for (int s = 0; s < kSaves; ++s) ok = mine.save() && ok;
            ::_exit(ok ? 0 : 1);
        }
        children.push_back(pid);
    }

    // Probe while the children race: once the file exists it must always
    // parse as a complete compatible snapshot.
    core::BackendOptions bo;
    std::size_t probes_restored = 0;
    for (int probe = 0; probe < 200 && probes_restored < 25; ++probe) {
        struct stat st {};
        if (::stat(cache.path().c_str(), &st) != 0) {
            ::usleep(1000);  // the children have not saved yet
            continue;
        }
        core::PersistentCache reader(core::make_backend(plain, core::BackendKind::InProcess, bo),
                                     cache.path(), fp, false);
        EXPECT_TRUE(reader.restored()) << "probe " << probe << " saw a torn snapshot";
        probes_restored += reader.restored() ? 1 : 0;
    }

    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    // After the dust settles: the advisory save lock serializes each
    // read-merge-rename cycle, so the racing writers must converge on the
    // exact union of their tables — all 10 entries, not just whichever
    // writer renamed last.
    core::PersistentCache final_reader(
        core::make_backend(plain, core::BackendKind::InProcess, bo), cache.path(), fp, false);
    EXPECT_TRUE(final_reader.restored());
    EXPECT_EQ(final_reader.size(), 10u)
        << "a racing saver dropped another writer's entries";
    EXPECT_GT(probes_restored, 0u);  // the race was actually observed
}

// ---------------------------------------------------------------------------
// DesignFlow-level wiring
// ---------------------------------------------------------------------------
TEST(DesignFlowBackends, WarmPersistentFlowIsSimulationFree) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    TempFile cache("ehdoe-flow");

    core::DesignFlow::Options o;
    o.runner_threads = 2;
    o.cache_file = cache.path();
    o.cache_fingerprint = sc.fingerprint();

    double cold_prediction = 0.0;
    {
        core::DesignFlow flow(sc.design_space(), sc.make_simulation(), o);
        flow.run_ccd();
        cold_prediction = flow.surface(core::kRespPackets).value(num::Vector(6));
        EXPECT_EQ(flow.batch_stats().simulations, 45u);
    }
    {
        core::DesignFlow flow(sc.design_space(), sc.make_simulation(), o);
        flow.run_ccd();
        EXPECT_EQ(flow.batch_stats().simulations, 0u);
        EXPECT_EQ(flow.batch_stats().cache_hits, 48u);
        EXPECT_DOUBLE_EQ(flow.surface(core::kRespPackets).value(num::Vector(6)),
                         cold_prediction);
    }
}
