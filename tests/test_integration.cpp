// End-to-end integration: the paper's full flow on the real node simulation,
// plus the fast-engine/baseline cross-check at system level.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>

#include "core/scenario.hpp"
#include "core/toolkit.hpp"
#include "doe/lhs.hpp"

using namespace ehdoe;
using namespace ehdoe::core;
using ehdoe::num::Vector;

namespace {

DesignFlow make_flow(ScenarioId id, double horizon) {
    const Scenario sc = Scenario::make(id, horizon);
    DesignFlow::Options o;
    o.runner_threads = 8;
    return DesignFlow(sc.design_space(), sc.make_simulation(), o);
}

}  // namespace

TEST(Integration, FullFlowOnOfficeScenario) {
    DesignFlow flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    const auto& res = flow.run_ccd();
    // 48 design points = 2^(6-1) + 12 axial + 4 centre; the batch engine
    // simulates the centre once and serves the 3 replicates from the cache.
    EXPECT_EQ(res.design.runs(), 48u);
    EXPECT_EQ(res.simulations, 45u);
    EXPECT_EQ(res.cache_hits, 3u);
    flow.fit_all();

    // Every indicator's RSM must explain most of the training variance.
    for (const std::string& name : flow.response_names()) {
        EXPECT_GT(flow.surface(name).fit().r_squared(), 0.55) << name;
    }
}

TEST(Integration, RsmPredictionsTrackSimulator) {
    DesignFlow flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    flow.run_ccd();
    const auto v = flow.validate(kRespConsumed, 25);
    // Consumed energy is the smoothest indicator: tight prediction.
    EXPECT_LT(v.nrmse_mean, 0.35);
    EXPECT_EQ(v.points, 25u);
}

TEST(Integration, RsmEvaluationIsPracticallyInstant) {
    // The headline claim: after the DoE investment, exploring the design
    // space costs microseconds per query instead of a simulation.
    DesignFlow flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    flow.run_ccd();
    auto& s = flow.surface(kRespPackets);

    const auto t0 = std::chrono::steady_clock::now();
    double acc = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Vector x(6);
        for (int j = 0; j < 6; ++j) x[static_cast<std::size_t>(j)] =
            std::sin(0.1 * i + j) * 0.9;
        acc += s.value(x);
    }
    const double per_eval =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() / n;
    EXPECT_NE(acc, 0.0);
    EXPECT_LT(per_eval, 20e-6);  // << one co-simulation (tens of ms)
}

TEST(Integration, OptimizationRespectsDowntimeConstraint) {
    DesignFlow flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    flow.run_ccd();
    const auto out = flow.optimize(
        kRespPackets, true,
        {{kRespDowntime, -1e300, 1.0}, {kRespVmin, 2.0, 1e300}}, true);
    ASSERT_TRUE(out.confirmed.has_value());
    EXPECT_GT(*out.confirmed, 0.0);
    // Confirmation simulation close to the RSM promise (within 40%: packets
    // is an integer-valued, mildly thresholded response).
    EXPECT_NEAR(*out.confirmed, out.predicted,
                0.4 * std::max(out.predicted, 10.0));
}

TEST(Integration, DriftScenarioRewardsTuning) {
    // On S2 the tuning controller must pay for itself: enabled vs disabled.
    const Scenario sc = Scenario::make(ScenarioId::Industrial, 300.0);
    auto cfg_on = sc.base_config();
    cfg_on.duration = 300.0;
    auto cfg_off = cfg_on;
    cfg_off.tuning_enabled = false;
    const auto m_on = node::simulate_node(cfg_on);
    const auto m_off = node::simulate_node(cfg_off);
    EXPECT_GT(m_on.energy_harvested - m_on.energy_tuning, m_off.energy_harvested);
}

TEST(Integration, LhsFlowMatchesCcdFlowRoughly) {
    // Two different designs on the same scenario produce surfaces that agree
    // at the centre of the region.
    DesignFlow ccd_flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    ccd_flow.run_ccd();
    DesignFlow lhs_flow = make_flow(ScenarioId::OfficeHvac, 120.0);
    lhs_flow.run(doe::latin_hypercube(60, 6, 2013));

    const Vector centre(6);
    const double a = ccd_flow.surface(kRespConsumed).value(centre);
    const double b = lhs_flow.surface(kRespConsumed).value(centre);
    EXPECT_NEAR(a, b, 0.35 * std::max(std::fabs(a), std::fabs(b)));
}
