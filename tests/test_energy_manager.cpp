// Brown-out hysteresis supervisor tests.
#include <gtest/gtest.h>

#include "node/energy_manager.hpp"

using namespace ehdoe::node;

TEST(EnergyManager, BrownOutAndRestart) {
    EnergyManager em(EnergyManagerParams{}, true);
    EXPECT_TRUE(em.alive());
    EXPECT_FALSE(em.observe(2.5));   // healthy, no change
    EXPECT_TRUE(em.observe(1.5));    // below v_off: dies
    EXPECT_FALSE(em.alive());
    EXPECT_EQ(em.brownouts(), 1u);
    EXPECT_FALSE(em.observe(2.1));   // inside hysteresis band: stays dead
    EXPECT_FALSE(em.alive());
    EXPECT_TRUE(em.observe(2.5));    // above v_on: restarts
    EXPECT_TRUE(em.alive());
}

TEST(EnergyManager, HysteresisPreventsChatter) {
    EnergyManagerParams p;
    p.v_off = 2.0;
    p.v_on = 2.4;
    EnergyManager em(p, true);
    em.observe(1.9);  // dead
    int transitions = 0;
    // Oscillate inside the band: no transitions.
    for (int i = 0; i < 20; ++i) {
        if (em.observe(2.1 + 0.05 * (i % 3))) ++transitions;
    }
    EXPECT_EQ(transitions, 0);
    EXPECT_FALSE(em.alive());
}

TEST(EnergyManager, StartsDeadWhenRequested) {
    EnergyManager em(EnergyManagerParams{}, false);
    EXPECT_FALSE(em.alive());
    EXPECT_TRUE(em.observe(3.0));
    EXPECT_TRUE(em.alive());
    EXPECT_EQ(em.brownouts(), 0u);
}

TEST(EnergyManager, CountsRepeatedBrownouts) {
    EnergyManager em(EnergyManagerParams{}, true);
    for (int i = 0; i < 3; ++i) {
        em.observe(1.0);
        em.observe(3.0);
    }
    EXPECT_EQ(em.brownouts(), 3u);
}

TEST(EnergyManager, Validation) {
    EnergyManagerParams p;
    p.v_on = p.v_off;  // must be strictly above
    EXPECT_THROW(EnergyManager(p, true), std::invalid_argument);
    p.v_off = -1.0;
    EXPECT_THROW(EnergyManager(p, true), std::invalid_argument);
}
