// Monomial / model-basis machinery tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/polynomial.hpp"

using namespace ehdoe::num;

TEST(Monomial, EvaluateAndDegree) {
    Monomial m(std::vector<unsigned>{1, 0, 2});  // x0 * x2^2
    EXPECT_EQ(m.degree(), 3u);
    EXPECT_FALSE(m.is_constant());
    EXPECT_DOUBLE_EQ(m.evaluate(Vector{2.0, 5.0, 3.0}), 18.0);
}

TEST(Monomial, ConstantTerm) {
    Monomial c(3);
    EXPECT_TRUE(c.is_constant());
    EXPECT_DOUBLE_EQ(c.evaluate(Vector{9.0, 9.0, 9.0}), 1.0);
    EXPECT_EQ(c.to_string(), "1");
}

TEST(Monomial, FirstDerivative) {
    Monomial m(std::vector<unsigned>{2, 1});  // x0^2 x1
    const Vector x{3.0, 4.0};
    EXPECT_DOUBLE_EQ(m.derivative(x, 0), 2.0 * 3.0 * 4.0);  // 2 x0 x1
    EXPECT_DOUBLE_EQ(m.derivative(x, 1), 9.0);              // x0^2
}

TEST(Monomial, SecondDerivatives) {
    Monomial m(std::vector<unsigned>{2, 1});
    const Vector x{3.0, 4.0};
    EXPECT_DOUBLE_EQ(m.second_derivative(x, 0, 0), 2.0 * 4.0);  // 2 x1
    EXPECT_DOUBLE_EQ(m.second_derivative(x, 0, 1), 2.0 * 3.0);  // 2 x0
    EXPECT_DOUBLE_EQ(m.second_derivative(x, 1, 1), 0.0);
}

TEST(Monomial, DerivativeOfAbsentVariableIsZero) {
    Monomial m(std::vector<unsigned>{0, 3});
    EXPECT_DOUBLE_EQ(m.derivative(Vector{1.0, 2.0}, 0), 0.0);
}

TEST(Monomial, ToStringWithNames) {
    Monomial m(std::vector<unsigned>{1, 0, 2});
    EXPECT_EQ(m.to_string({"a", "b", "c"}), "a*c^2");
    EXPECT_EQ(m.to_string(), "x0*x2^2");
}

TEST(Bases, LinearBasisSize) {
    const auto b = linear_basis(4);
    EXPECT_EQ(b.size(), 5u);
    EXPECT_TRUE(b[0].is_constant());
}

TEST(Bases, InteractionBasisSize) {
    // 1 + k + k(k-1)/2.
    EXPECT_EQ(interaction_basis(4).size(), 1u + 4u + 6u);
}

TEST(Bases, QuadraticBasisSize) {
    // 1 + 2k + k(k-1)/2.
    EXPECT_EQ(quadratic_basis(3).size(), 10u);
    EXPECT_EQ(quadratic_basis(6).size(), 28u);
}

TEST(Bases, UpToDegreeCountsBinomial) {
    // #monomials of degree <= d in k vars = C(k+d, d).
    EXPECT_EQ(monomials_up_to_degree(3, 2).size(), 10u);   // C(5,2)
    EXPECT_EQ(monomials_up_to_degree(2, 3).size(), 10u);   // C(5,3)
    EXPECT_EQ(monomials_up_to_degree(4, 1).size(), 5u);
}

TEST(Bases, OrderingStartsWithConstantThenLinear) {
    const auto b = monomials_up_to_degree(2, 2);
    EXPECT_TRUE(b[0].is_constant());
    EXPECT_EQ(b[1].degree(), 1u);
    EXPECT_EQ(b[2].degree(), 1u);
    EXPECT_EQ(b[3].degree(), 2u);
}

TEST(ModelMatrix, RowsMatchEvaluations) {
    const auto terms = quadratic_basis(2);
    Matrix pts{{0.5, -1.0}, {1.0, 1.0}};
    const Matrix m = model_matrix(terms, pts);
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), terms.size());
    for (std::size_t j = 0; j < terms.size(); ++j) {
        EXPECT_DOUBLE_EQ(m(0, j), terms[j].evaluate(pts.row(0)));
    }
}

TEST(ModelRow, MatchesMatrix) {
    const auto terms = quadratic_basis(3);
    const Vector x{0.3, -0.7, 0.9};
    const Vector row = model_row(terms, x);
    for (std::size_t j = 0; j < terms.size(); ++j) {
        EXPECT_DOUBLE_EQ(row[j], terms[j].evaluate(x));
    }
}

TEST(Monomial, DimensionMismatchThrows) {
    Monomial m(std::vector<unsigned>{1, 1});
    EXPECT_THROW(m.evaluate(Vector{1.0}), std::invalid_argument);
    EXPECT_THROW(m.derivative(Vector{1.0, 2.0}, 5), std::out_of_range);
}

// Property: derivative consistency with finite differences.
class MonomialFdP : public ::testing::TestWithParam<int> {};

TEST_P(MonomialFdP, DerivativeMatchesFiniteDifference) {
    const auto terms = monomials_up_to_degree(3, 3);
    const Vector x{0.4, -0.6, 0.8};
    const double h = 1e-6;
    const std::size_t j = static_cast<std::size_t>(GetParam());
    for (const auto& m : terms) {
        Vector xp = x, xm = x;
        xp[j] += h;
        xm[j] -= h;
        const double fd = (m.evaluate(xp) - m.evaluate(xm)) / (2.0 * h);
        EXPECT_NEAR(m.derivative(x, j), fd, 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(Vars, MonomialFdP, ::testing::Values(0, 1, 2));
