// Voltage multiplier network tests.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/multiplier.hpp"
#include "numerics/linalg.hpp"

using namespace ehdoe::harvester;
using ehdoe::num::Matrix;
using ehdoe::num::Vector;

TEST(Diode, ShockleyBasicShape) {
    DiodeParams d;
    EXPECT_NEAR(d.shockley_current(0.0), 0.0, 1e-18);
    EXPECT_LT(d.shockley_current(-1.0), 0.0);                      // ~ -Is
    EXPECT_NEAR(d.shockley_current(-5.0), -d.saturation_current, 1e-10);
    EXPECT_GT(d.shockley_current(0.4), 1e-4);                      // forward
}

TEST(Diode, ShockleyLinearizationIsContinuous) {
    DiodeParams d;
    const double v = d.linearize_above;
    const double eps = 1e-9;
    const double below = d.shockley_current(v - eps);
    const double above = d.shockley_current(v + eps);
    EXPECT_NEAR(below, above, std::fabs(below) * 1e-6);
    // And keeps growing linearly, not exponentially.
    const double g = (d.shockley_current(v + 0.1) - d.shockley_current(v)) / 0.1;
    const double g2 = (d.shockley_current(v + 0.2) - d.shockley_current(v + 0.1)) / 0.1;
    EXPECT_NEAR(g, g2, 1e-9 * g);
}

TEST(Diode, PwlContinuousAtThreshold) {
    DiodeParams d;
    const double eps = 1e-12;
    EXPECT_NEAR(d.pwl_current(d.v_on - eps), d.pwl_current(d.v_on + eps), 1e-9);
    EXPECT_NEAR(d.pwl_current(d.v_on + 0.15), 0.15 / d.r_on + d.g_off * d.v_on, 1e-9);
    EXPECT_NEAR(d.pwl_current(-0.5), -0.5 * d.g_off, 1e-15);
}

TEST(Network, TopologyCounts) {
    MultiplierParams p;
    p.stages = 4;
    MultiplierNetwork net(p, 0.1);
    EXPECT_EQ(net.num_nodes(), 9u);
    EXPECT_EQ(net.diodes().size(), 8u);
    EXPECT_EQ(net.output_node(), net.node_d(4));
}

TEST(Network, CapacitanceMatrixIsSpd) {
    MultiplierNetwork net(MultiplierParams{}, 100e-6);
    EXPECT_NO_THROW(ehdoe::num::CholeskyFactor{net.capacitance()});
}

TEST(Network, CapacitanceMatrixSymmetric) {
    MultiplierNetwork net(MultiplierParams{}, 0.0);
    const Matrix& c = net.capacitance();
    for (std::size_t i = 0; i < c.rows(); ++i)
        for (std::size_t j = 0; j < c.cols(); ++j) EXPECT_DOUBLE_EQ(c(i, j), c(j, i));
}

TEST(Network, StorageCapAddedAtOutput) {
    MultiplierParams p;
    MultiplierNetwork without(p, 0.0);
    MultiplierNetwork with(p, 0.2);
    const auto out = with.output_node();
    EXPECT_NEAR(with.capacitance()(out, out) - without.capacitance()(out, out), 0.2, 1e-12);
}

TEST(Network, BranchVoltageSigns) {
    MultiplierParams p;
    p.stages = 1;
    MultiplierNetwork net(p, 0.0);
    // Nodes: v0=0, a1=1, d1=2. D0: gnd->a1, D1: a1->d1.
    Vector v(3);
    v[1] = -0.6;  // a1 below ground: D0 forward (anode gnd)
    v[2] = 0.2;
    EXPECT_NEAR(net.branch_voltage(0, v), 0.6, 1e-12);
    EXPECT_NEAR(net.branch_voltage(1, v), -0.8, 1e-12);
}

TEST(Network, ShockleyCurrentsConserveCharge) {
    // Sum of injections over all nodes + ground equals zero; with ground
    // implicit, the sum over nodes equals minus the ground injection. Verify
    // the anode/cathode pairing: total injected into floating pairs is 0.
    MultiplierParams p;
    p.stages = 2;
    MultiplierNetwork net(p, 0.0);
    Vector v(net.num_nodes());
    v[net.node_a(1)] = -0.5;
    v[net.node_a(2)] = 0.7;
    v[net.node_d(1)] = 0.1;
    v[net.node_d(2)] = 0.9;
    Vector inject(net.num_nodes());
    net.add_shockley_currents(v, inject);
    // Ground current = current through diodes attached to ground (D0 anode).
    const double i_gnd = p.diode.shockley_current(net.branch_voltage(0, v));
    double total = 0.0;
    for (std::size_t i = 0; i < inject.size(); ++i) total += inject[i];
    EXPECT_NEAR(total, i_gnd, 1e-15);
}

TEST(Network, PwlStampMatchesPwlCurrent) {
    // G v + s must reproduce the branch current law for each segment.
    MultiplierParams p;
    p.stages = 1;
    MultiplierNetwork net(p, 0.0);
    Vector v(3);
    v[1] = -0.8;
    v[2] = 0.4;
    for (std::uint32_t seg : {0u, 1u, 2u, 3u}) {
        Matrix g(3, 3);
        Vector s(3);
        net.stamp_pwl(seg, g, s);
        Vector inj = g * v + s;
        // Manually compute expected injections.
        Vector expect(3);
        for (std::size_t k = 0; k < 2; ++k) {
            const double vb = net.branch_voltage(k, v);
            const bool on = (seg >> k) & 1u;
            const double i = on ? (vb - p.diode.v_on) / p.diode.r_on + p.diode.g_off * p.diode.v_on
                                : p.diode.g_off * vb;
            const auto& br = net.diodes()[k];
            if (br.anode >= 0) expect[static_cast<std::size_t>(br.anode)] -= i;
            if (br.cathode >= 0) expect[static_cast<std::size_t>(br.cathode)] += i;
        }
        for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(inj[i], expect[i], 1e-12) << "seg=" << seg;
    }
}

TEST(Network, Validation) {
    MultiplierParams p;
    p.stages = 0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = MultiplierParams{};
    p.stage_capacitance = 0.0;
    EXPECT_THROW(MultiplierNetwork(p, 0.0), std::invalid_argument);
    EXPECT_THROW(MultiplierNetwork(MultiplierParams{}, -1.0), std::invalid_argument);
}

// Property: the capacitance matrix stays SPD across stage counts.
class StagesP : public ::testing::TestWithParam<int> {};

TEST_P(StagesP, SpdAcrossStageCounts) {
    MultiplierParams p;
    p.stages = static_cast<std::size_t>(GetParam());
    MultiplierNetwork net(p, 0.15);
    EXPECT_NO_THROW(ehdoe::num::CholeskyFactor{net.capacitance()});
    EXPECT_EQ(net.diodes().size(), 2u * p.stages);
}

INSTANTIATE_TEST_SUITE_P(N, StagesP, ::testing::Values(1, 2, 3, 5, 8, 12));
