// ResponseSurface analytic calculus + canonical analysis tests.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/composite.hpp"
#include "rsm/surface.hpp"

using namespace ehdoe::rsm;
using ehdoe::doe::DesignSpace;
using ehdoe::num::Vector;

namespace {

ResponseSurface make_surface(const std::function<double(const Vector&)>& truth,
                             std::size_t k = 2) {
    const auto d = ehdoe::doe::central_composite(k, {});
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) y[i] = truth(d.points.row(i));
    std::vector<ehdoe::doe::Factor> factors;
    for (std::size_t i = 0; i < k; ++i) {
        factors.push_back({"f" + std::to_string(i), 0.0, 10.0, false});
    }
    DesignSpace space(factors);
    return ResponseSurface(fit_ols(ModelSpec(k, ModelOrder::Quadratic), d.points, y), space,
                           "resp");
}

// Bowl with minimum at (0.5, -0.25).
double bowl(const Vector& x) {
    return 3.0 + (x[0] - 0.5) * (x[0] - 0.5) + 2.0 * (x[1] + 0.25) * (x[1] + 0.25);
}

// Dome with maximum at (0.2, 0.4).
double dome(const Vector& x) {
    return 5.0 - 2.0 * (x[0] - 0.2) * (x[0] - 0.2) - (x[1] - 0.4) * (x[1] - 0.4);
}

double saddle(const Vector& x) { return x[0] * x[0] - x[1] * x[1]; }

}  // namespace

TEST(Surface, GradientAnalytic) {
    const ResponseSurface s = make_surface(bowl);
    const Vector x{0.1, 0.3};
    const Vector g = s.gradient(x);
    EXPECT_NEAR(g[0], 2.0 * (0.1 - 0.5), 1e-9);
    EXPECT_NEAR(g[1], 4.0 * (0.3 + 0.25), 1e-9);
}

TEST(Surface, HessianAnalytic) {
    const ResponseSurface s = make_surface(bowl);
    const auto h = s.hessian(Vector{0.0, 0.0});
    EXPECT_NEAR(h(0, 0), 2.0, 1e-9);
    EXPECT_NEAR(h(1, 1), 4.0, 1e-9);
    EXPECT_NEAR(h(0, 1), 0.0, 1e-9);
}

TEST(Surface, StationaryPointMinimum) {
    const ResponseSurface s = make_surface(bowl);
    const auto sp = s.stationary_point();
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(sp->kind, StationaryKind::Minimum);
    EXPECT_NEAR(sp->coded[0], 0.5, 1e-8);
    EXPECT_NEAR(sp->coded[1], -0.25, 1e-8);
    EXPECT_NEAR(sp->value, 3.0, 1e-8);
    EXPECT_TRUE(sp->inside_region);
    EXPECT_GT(sp->eigenvalues[0], 0.0);
}

TEST(Surface, StationaryPointMaximum) {
    const auto sp = make_surface(dome).stationary_point();
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(sp->kind, StationaryKind::Maximum);
    EXPECT_NEAR(sp->coded[0], 0.2, 1e-8);
    EXPECT_NEAR(sp->value, 5.0, 1e-8);
}

TEST(Surface, StationaryPointSaddle) {
    const auto sp = make_surface(saddle).stationary_point();
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(sp->kind, StationaryKind::Saddle);
    EXPECT_LT(sp->eigenvalues[0], 0.0);
    EXPECT_GT(sp->eigenvalues[1], 0.0);
}

TEST(Surface, NoStationaryPointForLinearModel) {
    const auto d = ehdoe::doe::central_composite(2, {});
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) y[i] = 1.0 + d.points(i, 0);
    DesignSpace space({{"a", 0.0, 1.0, false}, {"b", 0.0, 1.0, false}});
    ResponseSurface s(fit_ols(ModelSpec(2, ModelOrder::Linear), d.points, y), space, "lin");
    EXPECT_FALSE(s.stationary_point().has_value());
}

TEST(Surface, NaturalUnitsEvaluation) {
    const ResponseSurface s = make_surface(bowl);
    // Natural 5.0 maps to coded 0.0 on [0, 10].
    EXPECT_NEAR(s.value_natural(Vector{5.0, 5.0}), bowl(Vector{0.0, 0.0}), 1e-8);
}

TEST(Surface, SliceGrid) {
    const ResponseSurface s = make_surface(bowl);
    const auto grid = s.slice(0, 1, Vector{0.0, 0.0}, 5);
    EXPECT_EQ(grid.rows(), 5u);
    EXPECT_EQ(grid.cols(), 5u);
    EXPECT_NEAR(grid(0, 0), bowl(Vector{-1.0, -1.0}), 1e-8);
    EXPECT_NEAR(grid(4, 4), bowl(Vector{1.0, 1.0}), 1e-8);
    EXPECT_THROW(s.slice(0, 0, Vector{0.0, 0.0}, 5), std::invalid_argument);
    EXPECT_THROW(s.slice(0, 1, Vector{0.0, 0.0}, 1), std::invalid_argument);
}

TEST(Surface, GridBestFindsExtremes) {
    const ResponseSurface s = make_surface(dome);
    const auto best = s.grid_best(21, true);
    EXPECT_NEAR(best.coded[0], 0.2, 0.1);
    EXPECT_NEAR(best.coded[1], 0.4, 0.1);
    EXPECT_NEAR(best.value, 5.0, 0.05);
    const auto worst = s.grid_best(21, false);
    EXPECT_LT(worst.value, best.value);
}

TEST(Surface, GradientMatchesFiniteDifference) {
    const ResponseSurface s = make_surface(dome);
    const Vector x{0.11, -0.37};
    const Vector g = s.gradient(x);
    const double h = 1e-6;
    for (std::size_t j = 0; j < 2; ++j) {
        Vector xp = x, xm = x;
        xp[j] += h;
        xm[j] -= h;
        EXPECT_NEAR(g[j], (s.value(xp) - s.value(xm)) / (2.0 * h), 1e-5);
    }
}
