// Tuning map and actuator tests.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/tuning.hpp"

using namespace ehdoe::harvester;

TEST(TuningMap, SyntheticRangeAndMonotonicity) {
    const TuningMap m = TuningMap::synthetic();
    EXPECT_DOUBLE_EQ(m.f_min(), 65.0);
    EXPECT_DOUBLE_EQ(m.f_max(), 85.0);
    double prev = m.frequency(m.d_min());
    for (double d = m.d_min() + 0.1; d <= m.d_max(); d += 0.1) {
        const double f = m.frequency(d);
        EXPECT_LE(f, prev + 1e-9);
        prev = f;
    }
}

TEST(TuningMap, InverseRoundTrip) {
    const TuningMap m = TuningMap::synthetic();
    for (double f : {66.0, 70.0, 75.0, 80.0, 84.0}) {
        const double d = m.separation_for(f);
        EXPECT_NEAR(m.frequency(d), f, 1e-5);
    }
}

TEST(TuningMap, ClampsOutOfRange) {
    const TuningMap m = TuningMap::synthetic();
    EXPECT_NEAR(m.frequency(0.0), m.f_max(), 1e-9);
    EXPECT_NEAR(m.frequency(99.0), m.f_min(), 1e-9);
    EXPECT_NEAR(m.separation_for(100.0), m.d_min(), 1e-6);
    EXPECT_NEAR(m.separation_for(10.0), m.d_max(), 1e-6);
}

TEST(TuningMap, SpringConstantMatchesFrequency) {
    const TuningMap m = TuningMap::synthetic();
    const double mass = 8e-3;
    const double d = m.separation_for(75.0);
    const double k = m.spring_constant(d, mass);
    EXPECT_NEAR(std::sqrt(k / mass) / (2.0 * M_PI), 75.0, 1e-3);
}

TEST(TuningMap, RejectsNonDecreasingCalibration) {
    EXPECT_THROW(TuningMap({1.0, 2.0, 3.0}, {70.0, 75.0, 72.0}), std::invalid_argument);
    EXPECT_THROW(TuningMap({1.0, 2.0}, {75.0, 70.0}), std::invalid_argument);  // < 3 pts
}

TEST(Actuator, MoveTakesTimeAndEnergy) {
    ActuatorParams p;
    p.speed_mm_per_s = 0.5;
    p.power_w = 0.01;
    TuningActuator a(p, 1.0);
    const double t_move = a.command(3.0, 0.0);
    EXPECT_NEAR(t_move, 4.0, 1e-12);
    a.update(2.0);  // halfway
    EXPECT_TRUE(a.moving());
    EXPECT_NEAR(a.position(), 2.0, 1e-9);
    a.update(5.0);  // done
    EXPECT_FALSE(a.moving());
    EXPECT_NEAR(a.position(), 3.0, 1e-12);
    EXPECT_NEAR(a.energy_consumed(5.0), 0.01 * 4.0, 1e-9);
    EXPECT_NEAR(a.travel(), 2.0, 1e-9);
    EXPECT_EQ(a.moves(), 1u);
}

TEST(Actuator, InFlightEnergyReportedBeforeUpdate) {
    ActuatorParams p;
    p.speed_mm_per_s = 1.0;
    p.power_w = 0.02;
    TuningActuator a(p, 0.0);
    a.command(2.0, 0.0);
    EXPECT_NEAR(a.energy_consumed(1.0), 0.02, 1e-9);   // 1 s into a 2 s move
    EXPECT_NEAR(a.energy_consumed(10.0), 0.04, 1e-9);  // capped at move end
}

TEST(Actuator, PreemptionKeepsPartialEnergy) {
    ActuatorParams p;
    p.speed_mm_per_s = 1.0;
    p.power_w = 0.02;
    TuningActuator a(p, 0.0);
    a.command(4.0, 0.0);      // 4 s move
    a.command(0.0, 1.0);      // pre-empt at t=1 (position 1.0), go back
    EXPECT_NEAR(a.position(), 1.0, 1e-9);
    a.update(3.0);            // 1 mm back takes 1 s; done at t=2
    EXPECT_FALSE(a.moving());
    EXPECT_NEAR(a.position(), 0.0, 1e-9);
    // Energy: 1 s out + 1 s back.
    EXPECT_NEAR(a.energy_consumed(3.0), 0.04, 1e-9);
}

TEST(Actuator, QuantizesToResolution) {
    ActuatorParams p;
    p.min_step_mm = 0.1;
    TuningActuator a(p, 0.0);
    a.command(1.234, 0.0);
    EXPECT_NEAR(a.target(), 1.2, 1e-12);
}

TEST(Actuator, ZeroDistanceMoveIsFree) {
    TuningActuator a(ActuatorParams{}, 2.0);
    EXPECT_DOUBLE_EQ(a.command(2.0, 0.0), 0.0);
    EXPECT_FALSE(a.moving());
    EXPECT_EQ(a.moves(), 0u);
}

TEST(RetuneCost, EnergyAndTimeScaleWithTravel) {
    const TuningMap m = TuningMap::synthetic();
    ActuatorParams p;
    const double e_small = retune_energy(m, p, 70.0, 71.0);
    const double e_big = retune_energy(m, p, 66.0, 84.0);
    EXPECT_GT(e_big, e_small);
    EXPECT_GT(e_small, 0.0);
    EXPECT_NEAR(retune_time(m, p, 66.0, 84.0) * p.power_w, e_big, 1e-12);
    EXPECT_DOUBLE_EQ(retune_energy(m, p, 75.0, 75.0), 0.0);
}

TEST(Actuator, Validation) {
    ActuatorParams bad;
    bad.speed_mm_per_s = 0.0;
    EXPECT_THROW(TuningActuator(bad, 0.0), std::invalid_argument);
}
