// Stepwise model-reduction tests.
#include <gtest/gtest.h>

#include "doe/lhs.hpp"
#include "numerics/stats.hpp"
#include "rsm/stepwise.hpp"

using namespace ehdoe::rsm;
using ehdoe::num::Monomial;
using ehdoe::num::Vector;

namespace {

// y = 2 + 3 x0 + 1.5 x0 x1 + noise. x2 is inert.
std::pair<ehdoe::num::Matrix, std::vector<double>> make_data(double noise,
                                                             std::uint64_t seed = 11) {
    ehdoe::num::Rng rng = ehdoe::num::make_rng(seed);
    const auto d = ehdoe::doe::latin_hypercube(90, 3, 47);
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) {
        const Vector x = d.points.row(i);
        y[i] = 2.0 + 3.0 * x[0] + 1.5 * x[0] * x[1] + ehdoe::num::normal(rng, 0.0, noise);
    }
    return {d.points, y};
}

bool has_term(const ModelSpec& m, const std::vector<unsigned>& exps) {
    for (const auto& t : m.terms()) {
        if (t.exponents == exps) return true;
    }
    return false;
}

}  // namespace

TEST(Backward, RemovesInertTermsKeepsReal) {
    const auto [pts, y] = make_data(0.1);
    const StepwiseResult r =
        backward_eliminate(ModelSpec(3, ModelOrder::Quadratic), pts, y);
    EXPECT_GT(r.terms_removed, 0u);
    EXPECT_TRUE(has_term(r.fit.model, {1, 0, 0}));  // x0 stays
    EXPECT_TRUE(has_term(r.fit.model, {1, 1, 0}));  // x0 x1 stays
    EXPECT_FALSE(has_term(r.fit.model, {0, 0, 2})); // x2^2 goes
    EXPECT_GT(r.fit.r_squared(), 0.98);
    EXPECT_EQ(r.removed_terms.size(), r.terms_removed);
}

TEST(Backward, HeredityKeepsParentsOfInteractions) {
    const auto [pts, y] = make_data(0.1);
    StepwiseOptions o;
    o.enforce_heredity = true;
    const StepwiseResult r =
        backward_eliminate(ModelSpec(3, ModelOrder::Quadratic), pts, y, o);
    // x1 main effect is inert but its interaction x0x1 is real: heredity
    // keeps x1 in the model.
    if (has_term(r.fit.model, {1, 1, 0})) {
        EXPECT_TRUE(has_term(r.fit.model, {0, 1, 0}));
    }
}

TEST(Backward, WithoutHeredityPrunesHarder) {
    const auto [pts, y] = make_data(0.1);
    StepwiseOptions strict;
    strict.enforce_heredity = false;
    StepwiseOptions lax;
    lax.enforce_heredity = true;
    const auto r_strict = backward_eliminate(ModelSpec(3, ModelOrder::Quadratic), pts, y, strict);
    const auto r_lax = backward_eliminate(ModelSpec(3, ModelOrder::Quadratic), pts, y, lax);
    EXPECT_GE(r_strict.terms_removed, r_lax.terms_removed);
}

TEST(Backward, KeepsInterceptByDefault) {
    const auto [pts, y] = make_data(0.5);
    const StepwiseResult r =
        backward_eliminate(ModelSpec(3, ModelOrder::Quadratic), pts, y);
    EXPECT_TRUE(has_term(r.fit.model, {0, 0, 0}));
}

TEST(Forward, SelectsRealTerms) {
    const auto [pts, y] = make_data(0.1);
    const auto pool = ehdoe::num::quadratic_basis(3);
    const FitResult f = forward_select(3, pool, pts, y);
    EXPECT_TRUE(has_term(f.model, {1, 0, 0}));
    EXPECT_TRUE(has_term(f.model, {1, 1, 0}));
    EXPECT_LT(f.model.num_terms(), 8u);  // far fewer than the 10-term pool
    EXPECT_GT(f.r_squared(), 0.98);
}

TEST(Forward, RespectsMaxTerms) {
    const auto [pts, y] = make_data(0.1);
    const auto pool = ehdoe::num::quadratic_basis(3);
    const FitResult f = forward_select(3, pool, pts, y, 1e-3, 3);
    EXPECT_LE(f.model.num_terms(), 3u);
    EXPECT_THROW(forward_select(3, {}, pts, y), std::invalid_argument);
}
