// Unit tests for the dense Vector / Matrix layer.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "numerics/matrix.hpp"

using namespace ehdoe::num;

TEST(Vector, ConstructionAndAccess) {
    Vector v(3);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    Vector w{1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(w[2], 3.0);
    EXPECT_THROW(w.at(3), std::out_of_range);
}

TEST(Vector, Arithmetic) {
    Vector a{1.0, 2.0, 3.0};
    Vector b{4.0, 5.0, 6.0};
    Vector c = a + b;
    EXPECT_DOUBLE_EQ(c[0], 5.0);
    EXPECT_DOUBLE_EQ(c[2], 9.0);
    c -= a;
    EXPECT_TRUE(approx_equal(c, b, 1e-15));
    EXPECT_DOUBLE_EQ((2.0 * a)[1], 4.0);
    EXPECT_DOUBLE_EQ((a / 2.0)[0], 0.5);
    EXPECT_DOUBLE_EQ((-a)[2], -3.0);
}

TEST(Vector, ShapeMismatchThrows) {
    Vector a{1.0, 2.0};
    Vector b{1.0, 2.0, 3.0};
    EXPECT_THROW(a += b, std::invalid_argument);
    EXPECT_THROW(dot(a, b), std::invalid_argument);
}

TEST(Vector, NormsAndDot) {
    Vector v{3.0, 4.0};
    EXPECT_DOUBLE_EQ(v.norm(), 5.0);
    EXPECT_DOUBLE_EQ(v.norm_inf(), 4.0);
    EXPECT_DOUBLE_EQ(v.sum(), 7.0);
    EXPECT_DOUBLE_EQ(dot(v, v), 25.0);
    EXPECT_DOUBLE_EQ(Vector{}.norm_inf(), 0.0);
}

TEST(Vector, NormAvoidsOverflow) {
    Vector v{1e200, 1e200};
    EXPECT_TRUE(std::isfinite(v.norm()));
    EXPECT_NEAR(v.norm(), 1e200 * std::sqrt(2.0), 1e188);
}

TEST(Vector, Axpy) {
    Vector y{1.0, 1.0};
    Vector x{2.0, 3.0};
    y.axpy(2.0, x);
    EXPECT_DOUBLE_EQ(y[0], 5.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(Matrix, ConstructionIdentityDiag) {
    Matrix i3 = Matrix::identity(3);
    EXPECT_TRUE(i3.square());
    EXPECT_DOUBLE_EQ(i3(1, 1), 1.0);
    EXPECT_DOUBLE_EQ(i3(0, 1), 0.0);
    Matrix d = Matrix::diag(Vector{2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, MultiplyKnown) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{5.0, 6.0}, {7.0, 8.0}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Matrix, MatVec) {
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Vector x{1.0, 1.0};
    Vector y = a * x;
    EXPECT_DOUBLE_EQ(y[0], 3.0);
    EXPECT_DOUBLE_EQ(y[1], 7.0);
    EXPECT_THROW(a * Vector{1.0}, std::invalid_argument);
}

TEST(Matrix, TransposeAndAtB) {
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix at = a.transposed();
    EXPECT_EQ(at.rows(), 3u);
    EXPECT_DOUBLE_EQ(at(2, 1), 6.0);
    // a^T a two ways.
    Matrix direct = at * a;
    Matrix fused = mul_at_b(a, a);
    EXPECT_TRUE(approx_equal(direct, fused, 1e-14));
    Vector x{1.0, -1.0};
    EXPECT_TRUE(approx_equal(mul_at_x(a, x), at * x, 1e-14));
}

TEST(Matrix, RowColOps) {
    Matrix m{{1.0, 2.0}, {3.0, 4.0}};
    EXPECT_TRUE(approx_equal(m.row(1), Vector{3.0, 4.0}, 0.0));
    EXPECT_TRUE(approx_equal(m.col(0), Vector{1.0, 3.0}, 0.0));
    m.set_row(0, Vector{9.0, 8.0});
    EXPECT_DOUBLE_EQ(m(0, 1), 8.0);
    m.set_col(1, Vector{7.0, 6.0});
    EXPECT_DOUBLE_EQ(m(1, 1), 6.0);
    m.swap_rows(0, 1);
    EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
}

TEST(Matrix, Norms) {
    Matrix m{{1.0, -2.0}, {3.0, 4.0}};
    EXPECT_DOUBLE_EQ(m.norm_inf(), 7.0);       // max row sum of abs
    EXPECT_DOUBLE_EQ(m.max_abs(), 4.0);
    EXPECT_NEAR(m.norm_fro(), std::sqrt(30.0), 1e-14);
}

TEST(Matrix, StreamOutput) {
    std::ostringstream os;
    os << Matrix{{1.0, 2.0}};
    EXPECT_NE(os.str().find("1"), std::string::npos);
    std::ostringstream ov;
    ov << Vector{1.0, 2.0};
    EXPECT_EQ(ov.str(), "[1, 2]");
}

// Property sweep: (A B)^T == B^T A^T for random shapes.
class MatrixShapeP : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MatrixShapeP, TransposeOfProduct) {
    const auto [r, c] = GetParam();
    Matrix a(static_cast<std::size_t>(r), static_cast<std::size_t>(c));
    Matrix b(static_cast<std::size_t>(c), static_cast<std::size_t>(r));
    // Deterministic fill.
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) = std::sin(1.0 + 3.0 * i + 7.0 * j);
    for (std::size_t i = 0; i < b.rows(); ++i)
        for (std::size_t j = 0; j < b.cols(); ++j) b(i, j) = std::cos(2.0 + 5.0 * i + j);
    const Matrix lhs = (a * b).transposed();
    const Matrix rhs = b.transposed() * a.transposed();
    EXPECT_TRUE(approx_equal(lhs, rhs, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatrixShapeP,
                         ::testing::Values(std::pair{1, 1}, std::pair{2, 3}, std::pair{3, 2},
                                           std::pair{5, 5}, std::pair{7, 4}, std::pair{1, 9},
                                           std::pair{9, 1}, std::pair{12, 12}));
