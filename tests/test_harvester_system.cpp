// Full-circuit assembly + fast/baseline engine cross-validation + power-flow
// model tests. This file carries the key physics claims of the repo.
#include <gtest/gtest.h>

#include <cmath>

#include "harvester/harvester_system.hpp"
#include "sim/transient.hpp"

using namespace ehdoe::harvester;
using ehdoe::num::Vector;

namespace {
constexpr double kTwoPi = 2.0 * M_PI;

std::function<double(double)> sine_accel(double amp, double f) {
    return [amp, f](double t) { return amp * std::sin(kTwoPi * f * t); };
}
}  // namespace

TEST(Circuit, StateLayout) {
    HarvesterCircuit c{HarvesterCircuitParams{}};
    EXPECT_EQ(c.state_dim(), 3u + 11u);  // 5 stages: v0 + 5a + 5d
    EXPECT_EQ(c.idx_displacement(), 0u);
    EXPECT_EQ(c.idx_coil_current(), 2u);
    EXPECT_EQ(c.idx_output(), c.state_dim() - 1);
}

TEST(Circuit, InitialStatePrecharge) {
    HarvesterCircuit c{HarvesterCircuitParams{}};
    const Vector x = c.initial_state(2.5);
    EXPECT_NEAR(c.output_voltage(x), 2.5, 1e-12);
    EXPECT_DOUBLE_EQ(c.displacement(x), 0.0);
    // DC column voltages ascend proportionally.
    EXPECT_NEAR(x[c.idx_node(c.network().node_d(1))], 0.5, 1e-12);
}

TEST(Circuit, ResonantFrequencyRoundTrip) {
    HarvesterCircuit c{HarvesterCircuitParams{}};
    c.set_resonant_frequency(77.5);
    EXPECT_NEAR(c.resonant_frequency(), 77.5, 1e-9);
    EXPECT_THROW(c.set_spring_constant(-1.0), std::invalid_argument);
}

TEST(Circuit, MultiplierBoostsAboveCoilAmplitude) {
    // Run the fast engine to (near) steady state: DC output must exceed the
    // peak AC EMF — the whole point of the multiplier.
    HarvesterCircuitParams p;
    p.storage_capacitance = 20e-6;  // small cap so it charges quickly
    HarvesterCircuit c(p);
    auto accel = sine_accel(0.6, p.generator.natural_freq_hz);
    ehdoe::sim::PwlEngineOptions opt;
    opt.step = 1e-4;
    ehdoe::sim::PwlStateSpaceEngine eng(c.make_pwl_system(), opt);
    eng.set_state(c.initial_state(0.0));
    double emf_peak = 0.0;
    eng.run(4.0, c.make_input(accel), [&](double, const Vector& x) {
        emf_peak = std::max(emf_peak, std::fabs(c.emf(x)));
    });
    EXPECT_GT(c.output_voltage(eng.state()), 1.5 * emf_peak);
}

TEST(Engines, FastAndBaselineAgree) {
    // The headline cross-validation: identical circuit, sine drive, compare
    // waveforms between the PWL state-space engine and the Newton-Raphson
    // trapezoidal baseline.
    HarvesterCircuitParams p;
    p.storage_capacitance = 50e-6;
    HarvesterCircuit c(p);
    const double f = p.generator.natural_freq_hz;
    auto accel = sine_accel(0.6, f);

    ehdoe::sim::PwlEngineOptions fo;
    fo.step = 5e-5;
    ehdoe::sim::PwlStateSpaceEngine fast(c.make_pwl_system(), fo);
    fast.set_state(c.initial_state(0.5));

    ehdoe::sim::TransientOptions so;
    so.step = 5e-5;
    ehdoe::sim::TransientEngine slow(c.make_nonlinear_rhs(accel), c.state_dim(), so);
    slow.set_state(c.initial_state(0.5));

    std::vector<double> v_fast, v_slow, z_fast, z_slow;
    fast.run(0.6, c.make_input(accel), [&](double, const Vector& x) {
        v_fast.push_back(c.output_voltage(x));
        z_fast.push_back(c.displacement(x));
    });
    slow.run(0.6, [&](double, const Vector& x) {
        v_slow.push_back(c.output_voltage(x));
        z_slow.push_back(c.displacement(x));
    });
    ASSERT_EQ(v_fast.size(), v_slow.size());

    // Relative RMS waveform difference below ~12% (PWL diode vs Shockley).
    double num = 0.0, den = 0.0;
    for (std::size_t i = 0; i < v_fast.size(); ++i) {
        num += (v_fast[i] - v_slow[i]) * (v_fast[i] - v_slow[i]);
        den += v_slow[i] * v_slow[i];
    }
    EXPECT_LT(std::sqrt(num / den), 0.12);
    // Mechanical displacement nearly identical (barely touched by diodes).
    double mnum = 0.0, mden = 0.0;
    for (std::size_t i = 0; i < z_fast.size(); ++i) {
        mnum += (z_fast[i] - z_slow[i]) * (z_fast[i] - z_slow[i]);
        mden += z_slow[i] * z_slow[i];
    }
    EXPECT_LT(std::sqrt(mnum / mden), 0.08);
}

TEST(Engines, FastEngineMuchCheaper) {
    HarvesterCircuitParams p;
    HarvesterCircuit c(p);
    auto accel = sine_accel(0.6, 65.0);

    ehdoe::sim::PwlStateSpaceEngine fast(c.make_pwl_system(), {1e-4, true, 4});
    fast.set_state(c.initial_state(0.0));
    fast.run(0.5, c.make_input(accel));

    ehdoe::sim::TransientEngine slow(c.make_nonlinear_rhs(accel), c.state_dim(),
                                     {1e-4, 1e-9, 30, 1e-7, 1});
    slow.set_state(c.initial_state(0.0));
    slow.run(0.5);

    // Work proxy: the baseline runs thousands of RHS evaluations + LU
    // factorizations; the fast engine runs a handful of expm builds.
    EXPECT_LT(fast.stats().cache_misses, 100u);
    EXPECT_GT(slow.stats().rhs_evaluations, 50u * fast.stats().cache_misses);
}

TEST(Circuit, LoadResistorDrawsPower) {
    HarvesterCircuitParams p;
    p.storage_capacitance = 20e-6;
    p.load_resistance = 100e3;
    HarvesterCircuit c(p);
    auto accel = sine_accel(0.6, 65.0);
    ehdoe::sim::PwlStateSpaceEngine eng(c.make_pwl_system(), {1e-4, true, 4});
    eng.set_state(c.initial_state(0.0));
    eng.run(3.0, c.make_input(accel));
    EXPECT_GT(c.load_power(eng.state()), 0.0);
    // Loaded output must sit below the unloaded one.
    HarvesterCircuitParams pu = p;
    pu.load_resistance = 0.0;
    HarvesterCircuit cu(pu);
    ehdoe::sim::PwlStateSpaceEngine engu(cu.make_pwl_system(), {1e-4, true, 4});
    engu.set_state(cu.initial_state(0.0));
    engu.run(3.0, cu.make_input(accel));
    EXPECT_LT(c.output_voltage(eng.state()), cu.output_voltage(engu.state()));
}

TEST(PowerFlow, PeaksWhenTuned) {
    PowerFlowModel pf({MicrogeneratorParams{}, MultiplierParams{}, 0.85, -1.0});
    const double tuned = pf.power(72.0, 72.0, 0.6, 2.6);
    const double detuned = pf.power(72.0, 78.0, 0.6, 2.6);
    EXPECT_GT(tuned, 0.0);
    EXPECT_GT(tuned, 3.0 * detuned);
}

TEST(PowerFlow, ZeroBeyondOpenCircuitVoltage) {
    PowerFlowModel pf({MicrogeneratorParams{}, MultiplierParams{}, 0.85, -1.0});
    const double voc = pf.open_circuit_voltage(72.0, 72.0, 0.6);
    EXPECT_GT(voc, 3.0);
    EXPECT_DOUBLE_EQ(pf.power(72.0, 72.0, 0.6, voc + 0.1), 0.0);
    EXPECT_DOUBLE_EQ(pf.power(72.0, 72.0, 0.6, voc - 1e-6) > 0.0, true);
}

TEST(PowerFlow, ZeroWhenTooWeakForDiodes) {
    // Tiny excitation: peak below one diode drop -> no charging at all.
    PowerFlowModel pf({MicrogeneratorParams{}, MultiplierParams{}, 0.85, -1.0});
    EXPECT_DOUBLE_EQ(pf.power(72.0, 85.0, 0.001, 2.6), 0.0);
}

TEST(PowerFlow, MonotoneInStorageVoltageBelowMatched) {
    PowerFlowModel pf({MicrogeneratorParams{}, MultiplierParams{}, 0.85, -1.0});
    const double voc = pf.open_circuit_voltage(72.0, 72.0, 0.6);
    double prev = 0.0;
    for (double v = 0.5; v < voc / 2.0; v += 0.5) {
        const double p = pf.power(72.0, 72.0, 0.6, v);
        EXPECT_GE(p, prev);
        prev = p;
    }
}

TEST(PowerFlow, CalibrationScalesModel) {
    PowerFlowModel pf({MicrogeneratorParams{}, MultiplierParams{}, 0.5, -1.0});
    const double before = pf.power(72.0, 72.0, 0.6, 2.6);
    const double scale = pf.calibrate(72.0, 72.0, 0.6, 2.6, before * 1.4);
    EXPECT_NEAR(scale, 1.4, 1e-9);
    EXPECT_NEAR(pf.power(72.0, 72.0, 0.6, 2.6), before * 1.4, before * 1e-6);
    EXPECT_THROW(pf.calibrate(72.0, 72.0, 0.6, 2.6, -1.0), std::invalid_argument);
}

TEST(PowerFlow, AgreesWithCircuitWithinFactor) {
    // Cross-validation of the fast model against the circuit simulation:
    // charge a storage cap near v_store and compare average charging power.
    HarvesterCircuitParams p;
    p.storage_capacitance = 200e-6;
    HarvesterCircuit c(p);
    const double f = 72.0;
    c.set_resonant_frequency(f);
    auto accel = sine_accel(0.6, f);
    ehdoe::sim::PwlStateSpaceEngine eng(c.make_pwl_system(), {1e-4, true, 4});
    const double v0 = 2.4;
    eng.set_state(c.initial_state(v0));
    // Power *delivered by the multiplier* = storage energy gain + leakage.
    double leak_e = 0.0;
    eng.run(4.0, c.make_input(accel), [&](double, const Vector& x) {
        const double v = c.output_voltage(x);
        leak_e += v * v / p.storage_leakage * 1e-4;
    });
    const double v1 = c.output_voltage(eng.state());
    const double p_circuit =
        (0.5 * p.storage_capacitance * (v1 * v1 - v0 * v0) + leak_e) / 4.0;

    PowerFlowModel pf({p.generator, p.multiplier, 0.6, -1.0});
    const double p_model = pf.power(f, f, 0.6, 0.5 * (v0 + v1));
    ASSERT_GT(p_circuit, 0.0);
    ASSERT_GT(p_model, 0.0);
    // The calibrated fast model tracks the circuit within a factor of ~3
    // (part of the residual gap is the CW ladder's pump-up transient).
    const double ratio = p_model / p_circuit;
    EXPECT_GT(ratio, 1.0 / 3.0);
    EXPECT_LT(ratio, 3.0);
}

TEST(CircuitParams, Validation) {
    HarvesterCircuitParams p;
    p.storage_leakage = 0.0;
    EXPECT_THROW(HarvesterCircuit{p}, std::invalid_argument);
    HarvesterCircuit good{HarvesterCircuitParams{}};
    EXPECT_THROW(good.make_nonlinear_rhs(nullptr), std::invalid_argument);
    EXPECT_THROW(good.make_input(nullptr), std::invalid_argument);
}
