// Factorial / fractional / Plackett-Burman design tests.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "doe/factorial.hpp"

using namespace ehdoe::doe;
using ehdoe::num::Matrix;

TEST(FullFactorial, TwoLevelEnumeratesAllCorners) {
    const Design d = full_factorial_2level(3);
    EXPECT_EQ(d.runs(), 8u);
    std::set<std::vector<double>> rows;
    for (std::size_t i = 0; i < d.runs(); ++i) {
        std::vector<double> r;
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_NEAR(std::fabs(d.points(i, j)), 1.0, 1e-15);
            r.push_back(d.points(i, j));
        }
        rows.insert(r);
    }
    EXPECT_EQ(rows.size(), 8u);  // all distinct
    EXPECT_THROW(full_factorial_2level(0), std::invalid_argument);
    EXPECT_THROW(full_factorial_2level(25), std::invalid_argument);
}

TEST(FullFactorial, ColumnsAreBalancedAndOrthogonal) {
    const Design d = full_factorial_2level(4);
    for (std::size_t j = 0; j < 4; ++j) {
        double sum = 0.0;
        for (std::size_t i = 0; i < d.runs(); ++i) sum += d.points(i, j);
        EXPECT_DOUBLE_EQ(sum, 0.0);
        for (std::size_t j2 = j + 1; j2 < 4; ++j2) {
            double dotp = 0.0;
            for (std::size_t i = 0; i < d.runs(); ++i) dotp += d.points(i, j) * d.points(i, j2);
            EXPECT_DOUBLE_EQ(dotp, 0.0);
        }
    }
}

TEST(FullFactorial, MultiLevelGrid) {
    const Design d = full_factorial(2, 3);
    EXPECT_EQ(d.runs(), 9u);
    std::set<double> levels;
    for (std::size_t i = 0; i < 9; ++i) levels.insert(d.points(i, 0));
    EXPECT_EQ(levels.size(), 3u);
    EXPECT_TRUE(levels.count(-1.0) && levels.count(0.0) && levels.count(1.0));
    const Design m = full_factorial(std::vector<std::size_t>{2, 3, 4});
    EXPECT_EQ(m.runs(), 24u);
    EXPECT_THROW(full_factorial(std::vector<std::size_t>{1}), std::invalid_argument);
}

TEST(Fractional, HalfFractionResolutionV) {
    const FractionalFactorial ff = fractional_factorial(5, {"E=ABCD"});
    EXPECT_EQ(ff.design.runs(), 16u);
    EXPECT_EQ(ff.design.dimension(), 5u);
    EXPECT_EQ(ff.resolution, 5u);
    // Generated column equals the product of its sources in every run.
    for (std::size_t i = 0; i < 16; ++i) {
        const double prod = ff.design.points(i, 0) * ff.design.points(i, 1) *
                            ff.design.points(i, 2) * ff.design.points(i, 3);
        EXPECT_DOUBLE_EQ(ff.design.points(i, 4), prod);
    }
}

TEST(Fractional, QuarterFractionResolution) {
    // 2^(6-2) with the standard generators E=ABC, F=BCD -> resolution IV.
    const FractionalFactorial ff = fractional_factorial(6, {"E=ABC", "F=BCD"});
    EXPECT_EQ(ff.design.runs(), 16u);
    EXPECT_EQ(ff.resolution, 4u);
    EXPECT_EQ(ff.defining_words.size(), 3u);  // 2^p - 1
}

TEST(Fractional, RejectsBadGenerators) {
    EXPECT_THROW(fractional_factorial(5, {"EABCD"}), std::invalid_argument);
    EXPECT_THROW(fractional_factorial(5, {"A=BC"}), std::invalid_argument);   // target is base
    EXPECT_THROW(fractional_factorial(5, {"E=XY"}), std::invalid_argument);   // beyond base
    EXPECT_THROW(fractional_factorial(5, {"E=ABCD", "E=AB"}), std::invalid_argument);
    EXPECT_THROW(fractional_factorial(3, {"C=AA"}), std::invalid_argument);   // empty word
}

TEST(Hadamard, OrthogonalityAcrossOrders) {
    for (std::size_t n : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u, 32u}) {
        const Matrix h = hadamard(n);
        const Matrix hht = h * h.transposed();
        for (std::size_t i = 0; i < n; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                EXPECT_NEAR(hht(i, j), i == j ? static_cast<double>(n) : 0.0, 1e-9)
                    << "n=" << n;
            }
        }
    }
    EXPECT_THROW(hadamard(6), std::invalid_argument);
    EXPECT_THROW(hadamard(0), std::invalid_argument);
}

TEST(PlackettBurman, ColumnsBalancedAndOrthogonal) {
    const Design d = plackett_burman(10);  // 12-run PB
    EXPECT_EQ(d.runs(), 12u);
    EXPECT_EQ(d.dimension(), 10u);
    for (std::size_t j = 0; j < 10; ++j) {
        double sum = 0.0;
        for (std::size_t i = 0; i < 12; ++i) sum += d.points(i, j);
        EXPECT_DOUBLE_EQ(sum, 0.0);
        for (std::size_t j2 = j + 1; j2 < 10; ++j2) {
            double dotp = 0.0;
            for (std::size_t i = 0; i < 12; ++i) dotp += d.points(i, j) * d.points(i, j2);
            EXPECT_DOUBLE_EQ(dotp, 0.0);
        }
    }
}

class PbSizeP : public ::testing::TestWithParam<int> {};

TEST_P(PbSizeP, RunCountIsSmallMultipleOf4AboveK) {
    const auto k = static_cast<std::size_t>(GetParam());
    const Design d = plackett_burman(k);
    EXPECT_GT(d.runs(), k);
    EXPECT_EQ(d.runs() % 4, 0u);
    EXPECT_LE(d.runs(), k + 13);  // never wasteful by more than one block
}

INSTANTIATE_TEST_SUITE_P(Ks, PbSizeP, ::testing::Values(3, 5, 7, 9, 11, 15, 19, 23));
