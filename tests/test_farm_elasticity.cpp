// Elastic-farm tests: the fault-injection rig (net_test_utils.hpp) drives
// the three resilience features of the distributed evaluation service —
// shard re-dial (a killed-and-restarted eval-server rejoins a run and
// demonstrably serves points again, proven via the stats frame),
// deterministic throughput-weighted sharding (identical re-runs produce
// identical shard assignments), and the stats wire frame (round-trip,
// version-mismatch rejection, aggregation through RemoteBackend and
// BatchRunner). Every failover scenario must stay bitwise identical to
// InProcessBackend — elasticity never buys back determinism.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "doe/batch_runner.hpp"
#include "doe/factorial.hpp"
#include "net/eval_server.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"
#include "net_test_utils.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using namespace ehdoe::net_test;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

/// Irrational arithmetic so bitwise comparisons catch any reordering of
/// floating-point work across shards (same contract as test_remote_backend).
std::map<std::string, double> transcendental(const Vector& nat) {
    const double x = nat[0], y = nat[1];
    return {
        {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
        {"g", std::cos(x * y) / (1.0 + x * x)},
    };
}

Simulation transcendental_sim() {
    return [](const Vector& nat) { return transcendental(nat); };
}

/// Slow enough that a batch is still in flight when a test injects a fault.
Simulation slow_sim() {
    return [](const Vector& nat) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return transcendental(nat);
    };
}

}  // namespace

// ---------------------------------------------------------------------------
// The acceptance scenario: kill one of two shards mid-optimization, restart
// it, and watch it rejoin — results bitwise identical to InProcessBackend
// throughout, and the restarted shard demonstrably serves points after the
// rejoin (asserted via the stats frame, whose counters restart with the
// server process).
// ---------------------------------------------------------------------------
TEST(FarmElasticity, KilledAndRestartedShardRejoinsAndServesPoints) {
    const std::string fp = "sim-slow";
    auto s1 = start_server(slow_sim(), fp);
    auto s2 = start_server(slow_sim(), fp);
    const std::uint16_t port2 = s2->port();

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                    net::parse_endpoint(endpoint_of(*s2))};
    ro.fingerprint = fp;
    ro.redial_seconds = 0.0;  // every batch is a re-dial window
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    BatchRunner runner(backend);
    BatchRunner reference(transcendental_sim());

    // Batch 1: shoot shard 2 once it has demonstrably served work; the
    // batch must complete identically off the survivor.
    const Design d1 = full_factorial(2, 9);  // 81 distinct points
    std::thread killer([&] {
        while (s2->points_served() < 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        s2->stop();
    });
    const RunResults r1 = runner.run_design(kSpace, d1);
    killer.join();
    EXPECT_TRUE(num::approx_equal(r1.responses,
                                  reference.run_design(kSpace, d1).responses, 0.0));
    EXPECT_EQ(r1.simulations, 81u);
    EXPECT_EQ(backend->live_endpoints(), 1u);

    // Restart the shard on its old port — a new process, fresh counters.
    s2.reset();
    s2 = start_server(slow_sim(), fp, 2, 1, port2);
    EXPECT_EQ(s2->points_served(), 0u);

    // Batch 2: the next evaluate() re-dials, re-handshakes and rejoins.
    const Design d2 = full_factorial(2, 10);  // 100 fresh points
    const RunResults r2 = runner.run_design(kSpace, d2);
    EXPECT_TRUE(num::approx_equal(r2.responses,
                                  reference.run_design(kSpace, d2).responses, 0.0));
    EXPECT_EQ(backend->live_endpoints(), 2u);
    EXPECT_GE(backend->rejoins(), 1u);
    EXPECT_GE(backend->redials_attempted(), backend->rejoins());

    // Catch-up weighting: the survivor's serve ledger dwarfs the
    // rejoiner's, so the rejoined shard must take the larger share of
    // batch 2 until the ledger levels out — rejoining ramps the shard
    // back up, it does not freeze it at its dead-era share.
    std::size_t rejoined_share = 0;
    for (const std::size_t slot : backend->last_assignment()) {
        rejoined_share += slot == 1 ? 1 : 0;
    }
    EXPECT_GT(rejoined_share, 50u);

    // The restarted shard served real points after its rejoin — read its
    // counters over the wire, exactly as ehdoe-farm-stats would.
    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(net::parse_endpoint(endpoint_of(*s2)), stats, error))
        << error;
    EXPECT_GT(stats.points_served, 0u);
    EXPECT_EQ(stats.points_failed, 0u);
    EXPECT_EQ(stats.version, net::kProtocolVersion);
}

// ---------------------------------------------------------------------------
// Weighted sharding: the assignment is a pure function of recorded state.
// ---------------------------------------------------------------------------
TEST(FarmElasticity, WeightedAssignmentIsAPureDeterministicFunction) {
    // Uniform weights degenerate to i mod n.
    const std::vector<std::size_t> uniform = net::weighted_assignment(7, {1.0, 1.0, 1.0});
    const std::vector<std::size_t> expected{0, 1, 2, 0, 1, 2, 0};
    EXPECT_EQ(uniform, expected);

    // Skewed weights hand out proportional shares (8 points at 3:1).
    const std::vector<std::size_t> skewed = net::weighted_assignment(8, {3.0, 1.0});
    std::size_t first = 0;
    for (const std::size_t s : skewed) first += s == 0 ? 1 : 0;
    EXPECT_EQ(first, 6u);

    // Pure: the same inputs give the same vector, call after call.
    EXPECT_EQ(net::weighted_assignment(100, {5.0, 2.0, 3.0}),
              net::weighted_assignment(100, {5.0, 2.0, 3.0}));

    EXPECT_THROW(net::weighted_assignment(3, {}), std::invalid_argument);
    EXPECT_THROW(net::weighted_assignment(3, {1.0, 0.0}), std::invalid_argument);
}

TEST(FarmElasticity, TwoIdenticalRunsProduceIdenticalShardAssignments) {
    // Three shards and batch sizes not divisible by three, so the recorded
    // serve ledger becomes non-uniform and the weighted assignment has
    // something non-trivial to be deterministic about.
    const std::string fp = "sim-fast";
    auto s1 = start_server(transcendental_sim(), fp);
    auto s2 = start_server(transcendental_sim(), fp);
    auto s3 = start_server(transcendental_sim(), fp);

    const auto run_and_log = [&] {
        net::RemoteBackendOptions ro;
        ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                        net::parse_endpoint(endpoint_of(*s2)),
                        net::parse_endpoint(endpoint_of(*s3))};
        ro.fingerprint = fp;
        auto backend = std::make_shared<net::RemoteBackend>(ro);
        RunnerOptions no_memo;
        no_memo.memoize = false;
        BatchRunner runner(backend, no_memo);
        std::vector<std::vector<std::size_t>> log;
        for (const std::size_t levels : {std::size_t{5}, std::size_t{4}, std::size_t{6}}) {
            runner.run_design(kSpace, full_factorial(2, levels));
            log.push_back(backend->last_assignment());
        }
        return log;
    };

    const auto first = run_and_log();
    const auto second = run_and_log();
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t b = 0; b < first.size(); ++b) {
        EXPECT_EQ(first[b], second[b]) << "assignments diverged at batch " << b;
    }
    // And the ledger did skew: 25 points over 3 shards cannot split evenly.
    std::vector<std::size_t> counts(3, 0);
    for (const std::size_t s : first[0]) ++counts[s];
    EXPECT_EQ(counts[0] + counts[1] + counts[2], 25u);
    EXPECT_EQ(counts[0], 9u);  // SWRR hands the tie-broken extra to shard 0
}

TEST(FarmElasticity, ExplicitWeightsSkewAssignmentTowardFastShards) {
    const std::string fp = "sim-fast";
    auto fast = start_server(transcendental_sim(), fp);
    auto slow = start_server(transcendental_sim(), fp);

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*fast)),
                    net::parse_endpoint(endpoint_of(*slow))};
    ro.fingerprint = fp;
    ro.shard_weights = {3.0, 1.0};  // operator-measured: 3x the throughput
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    RunnerOptions no_memo;
    no_memo.memoize = false;
    BatchRunner runner(backend, no_memo);

    const RunResults base = BatchRunner(transcendental_sim()).run_design(
        kSpace, full_factorial(2, 8));
    const RunResults r = runner.run_design(kSpace, full_factorial(2, 8));  // 64 points
    EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
    EXPECT_EQ(fast->points_served(), 48u);  // 3/4 of 64, deterministic
    EXPECT_EQ(slow->points_served(), 16u);

    // Weight validation is loud, not silent.
    net::RemoteBackendOptions bad = ro;
    bad.shard_weights = {1.0};
    EXPECT_THROW(net::RemoteBackend{bad}, std::invalid_argument);
    bad.shard_weights = {1.0, -2.0};
    EXPECT_THROW(net::RemoteBackend{bad}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The stats frame: round-trip, version rejection, and aggregation.
// ---------------------------------------------------------------------------
TEST(FarmElasticity, StatsFrameRoundTripsLiveCounters) {
    const std::string fp = "sim-fast";
    auto server = start_server(transcendental_sim(), fp);
    BatchRunner runner(transcendental_sim(), remote_options({endpoint_of(*server)}, fp));
    runner.run_design(kSpace, full_factorial(2, 3));  // 9 distinct points

    net::ShardStats stats;
    std::string error;
    ASSERT_TRUE(net::query_shard_stats(net::parse_endpoint(endpoint_of(*server)), stats, error))
        << error;
    EXPECT_EQ(stats.version, net::kProtocolVersion);
    EXPECT_EQ(stats.points_served, 9u);
    EXPECT_EQ(stats.points_failed, 0u);
    EXPECT_EQ(stats.handshakes_rejected, 0u);
    EXPECT_EQ(stats.worker_respawns, 0u);
    EXPECT_GE(stats.connections_accepted, 2u);  // the eval conn + this poll
    EXPECT_GT(stats.uptime_seconds, 0.0);
    EXPECT_EQ(server->stats_served(), 1u);

    // The monitoring path never counts as evaluation traffic.
    EXPECT_EQ(server->points_served(), 9u);
}

TEST(FarmElasticity, StatsVersionMismatchIsRejectedWithAMessage) {
    auto server = start_server(transcendental_sim(), "sim-fast");

    const int fd = raw_connect(server->port());
    ASSERT_TRUE(net::write_stats_request(fd, net::kProtocolVersion + 5));
    std::uint64_t status = net::kStatusOk;
    net::ShardStats stats;
    std::string message;
    ASSERT_TRUE(net::read_stats_reply(fd, status, stats, message));
    EXPECT_EQ(status, net::kStatusError);
    EXPECT_NE(message.find("protocol version mismatch"), std::string::npos) << message;
    ::close(fd);
    EXPECT_EQ(server->handshakes_rejected(), 1u);
    EXPECT_EQ(server->stats_served(), 0u);

    // A well-versed poll still succeeds afterwards: one bad monitor cannot
    // wedge the stats path.
    std::string error;
    EXPECT_TRUE(
        net::query_shard_stats(net::parse_endpoint(endpoint_of(*server)), stats, error))
        << error;
}

TEST(FarmElasticity, ShardStatsAggregatesClientAndServerViews) {
    const std::string fp = "sim-fast";
    auto s1 = start_server(transcendental_sim(), fp);
    auto s2 = start_server(transcendental_sim(), fp);

    BatchRunner runner(transcendental_sim(),
                       remote_options({endpoint_of(*s1), endpoint_of(*s2)}, fp));
    runner.run_design(kSpace, full_factorial(2, 5));  // 25 distinct points

    const std::vector<net::ShardReport> reports = runner.shard_stats();
    ASSERT_EQ(reports.size(), 2u);
    std::uint64_t server_served = 0;
    std::uint64_t client_ledger = 0;
    for (const net::ShardReport& r : reports) {
        EXPECT_TRUE(r.alive);
        EXPECT_TRUE(r.reachable) << r.error;
        EXPECT_GT(r.weight, 0.0);
        server_served += r.stats.points_served;
        client_ledger += r.completed_points;
    }
    EXPECT_EQ(server_served, 25u);
    EXPECT_EQ(client_ledger, 25u);

    // The same view surfaces through a cache-decorated stack.
    TempFile cache("ehdoe-farm-stats-agg");
    RunnerOptions o = remote_options({endpoint_of(*s1)}, fp);
    o.cache_file = cache.path();
    BatchRunner cached(transcendental_sim(), o);
    cached.run_design(kSpace, full_factorial(2, 3));
    const auto cached_reports = cached.shard_stats();
    ASSERT_EQ(cached_reports.size(), 1u);
    EXPECT_TRUE(cached_reports[0].reachable) << cached_reports[0].error;

    // Local backends simply have no shards to report.
    BatchRunner local(transcendental_sim());
    EXPECT_TRUE(local.shard_stats().empty());
}

// ---------------------------------------------------------------------------
// FlakyProxy faults: a severed connection fails over bitwise-identically,
// and the severed shard rejoins through the same endpoint once the "cable"
// is back — no server restart involved.
// ---------------------------------------------------------------------------
TEST(FarmElasticity, SeveredConnectionFailsOverBitwiseIdenticalThenRejoins) {
    const std::string fp = "sim-slow";
    auto s1 = start_server(slow_sim(), fp);
    auto s2 = start_server(slow_sim(), fp);
    FlakyProxy proxy("127.0.0.1", s2->port());

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                    net::parse_endpoint(proxy.endpoint())};
    ro.fingerprint = fp;
    ro.redial_seconds = 0.0;
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    EXPECT_EQ(proxy.relays_opened(), 1u);  // the handshake went through it

    BatchRunner runner(backend);
    BatchRunner reference(transcendental_sim());

    // Cut the relay mid-batch, once the proxied shard has served points.
    const Design d1 = full_factorial(2, 9);
    std::thread cutter([&] {
        while (s2->points_served() < 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        proxy.sever();
    });
    const RunResults r1 = runner.run_design(kSpace, d1);
    cutter.join();
    EXPECT_TRUE(num::approx_equal(r1.responses,
                                  reference.run_design(kSpace, d1).responses, 0.0));
    EXPECT_EQ(r1.simulations, 81u);
    EXPECT_EQ(backend->live_endpoints(), 1u);

    // The next batch re-dials through the proxy (a fresh relay) and the
    // shard rejoins without its server ever restarting.
    const std::size_t served_before = s2->points_served();
    const Design d2 = full_factorial(2, 10);
    const RunResults r2 = runner.run_design(kSpace, d2);
    EXPECT_TRUE(num::approx_equal(r2.responses,
                                  reference.run_design(kSpace, d2).responses, 0.0));
    EXPECT_EQ(backend->live_endpoints(), 2u);
    EXPECT_GE(backend->rejoins(), 1u);
    EXPECT_GE(proxy.relays_opened(), 2u);
    EXPECT_GT(s2->points_served(), served_before);
}

TEST(FarmElasticity, DelayedLinkIsSlowButNotDeadAndStaysBitwiseIdentical) {
    const std::string fp = "sim-fast";
    auto s1 = start_server(transcendental_sim(), fp);
    auto s2 = start_server(transcendental_sim(), fp);
    FlakyProxy proxy("127.0.0.1", s2->port());

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                    net::parse_endpoint(proxy.endpoint())};
    ro.fingerprint = fp;
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    BatchRunner runner(backend);

    // A congested link delays every chunk; nothing dies and nothing may
    // fail over — latency is not a fault.
    proxy.set_delay_ms(2);
    const Design d = full_factorial(2, 4);  // 16 points
    const RunResults r = runner.run_design(kSpace, d);
    EXPECT_TRUE(num::approx_equal(
        r.responses, BatchRunner(transcendental_sim()).run_design(kSpace, d).responses, 0.0));
    EXPECT_EQ(backend->live_endpoints(), 2u);
    EXPECT_EQ(backend->rejoins(), 0u);
    EXPECT_GT(s2->points_served(), 0u);  // the delayed shard still served
}

TEST(FarmElasticity, BlackholedShardIsCutAndFailsOverBitwiseIdentically) {
    const std::string fp = "sim-slow";
    auto s1 = start_server(slow_sim(), fp);
    auto s2 = start_server(slow_sim(), fp);
    FlakyProxy proxy("127.0.0.1", s2->port());

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                    net::parse_endpoint(proxy.endpoint())};
    ro.fingerprint = fp;
    ro.redial_seconds = -1.0;  // isolate the failover path
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    BatchRunner runner(backend);

    // Packets start vanishing mid-batch (connection stays open, bytes are
    // dropped); shortly after, the dead link is cut outright. The batch
    // must fail over and complete identically — the blackholed period
    // loses responses, never corrupts them.
    const Design d = full_factorial(2, 9);
    std::thread dropper([&] {
        while (s2->points_served() < 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        proxy.set_blackhole(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        proxy.sever();
    });
    const RunResults r = runner.run_design(kSpace, d);
    dropper.join();
    EXPECT_TRUE(num::approx_equal(
        r.responses, BatchRunner(transcendental_sim()).run_design(kSpace, d).responses, 0.0));
    EXPECT_EQ(r.simulations, 81u);
    EXPECT_EQ(backend->live_endpoints(), 1u);
}

TEST(FarmElasticity, RefusedRedialKeepsShardDeadUntilServiceReturns) {
    const std::string fp = "sim-fast";
    auto s1 = start_server(transcendental_sim(), fp);
    auto s2 = start_server(transcendental_sim(), fp);
    FlakyProxy proxy("127.0.0.1", s2->port());

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)),
                    net::parse_endpoint(proxy.endpoint())};
    ro.fingerprint = fp;
    ro.redial_seconds = 0.0;
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    RunnerOptions no_memo;
    no_memo.memoize = false;
    BatchRunner runner(backend, no_memo);

    // Kill the proxied shard's link, then make the endpoint accept-and-
    // close: the port is open but the service is not. Batch 1 detects the
    // severed connection (failover); batch 2's re-dial must then fail
    // cleanly (handshake dropped) and the shard stays dead.
    proxy.sever();
    proxy.set_refuse(true);
    runner.run_design(kSpace, full_factorial(2, 4));
    EXPECT_EQ(backend->live_endpoints(), 1u);
    runner.run_design(kSpace, full_factorial(2, 3));
    EXPECT_EQ(backend->live_endpoints(), 1u);
    EXPECT_GE(backend->redials_attempted(), 1u);
    EXPECT_EQ(backend->rejoins(), 0u);

    // Service restored: the next batch rejoins through a real relay.
    proxy.set_refuse(false);
    runner.run_design(kSpace, full_factorial(2, 5));
    EXPECT_EQ(backend->live_endpoints(), 2u);
    EXPECT_EQ(backend->rejoins(), 1u);
}
