// Shared rig of the net test suite (test_remote_backend,
// test_farm_elasticity, test_wire_hardening): loopback eval-server
// construction, endpoint formatting, scratch files, and the FlakyProxy
// fault injector — a loopback TCP relay that can delay, blackhole or sever
// live connections on command, so shard-death and network-fault paths are
// exercised without killing real servers.
#pragma once

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <list>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "doe/runner.hpp"
#include "net/eval_server.hpp"

namespace ehdoe::net_test {

/// Start a loopback eval-server; `port` 0 binds an ephemeral port (read it
/// back via server->port()), a fixed port restarts a "machine" in place.
inline std::unique_ptr<net::EvalServer> start_server(core::Simulation sim,
                                                     const std::string& fingerprint,
                                                     std::size_t workers = 2,
                                                     std::size_t replicates = 1,
                                                     std::uint16_t port = 0) {
    net::EvalServerOptions o;
    o.port = port;
    o.workers = workers;
    o.replicates = replicates;
    o.fingerprint = fingerprint;
    auto server = std::make_unique<net::EvalServer>(std::move(sim), o);
    server->start();
    return server;
}

inline std::string endpoint_of(const net::EvalServer& server) {
    return "127.0.0.1:" + std::to_string(server.port());
}

inline doe::RunnerOptions remote_options(const std::vector<std::string>& endpoints,
                                         const std::string& fingerprint) {
    doe::RunnerOptions o;
    o.endpoints = endpoints;
    o.cache_fingerprint = fingerprint;
    return o;
}

/// Raw-socket connect to a loopback port, for wire-level test clients that
/// speak (or deliberately mis-speak) the protocol by hand.
inline int raw_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
    return fd;
}

/// A scratch file path that dies with the test.
class TempFile {
public:
    explicit TempFile(const std::string& stem) {
        path_ = (std::filesystem::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + ".ehcache"))
                    .string();
        std::remove(path_.c_str());
    }
    ~TempFile() {
        std::remove(path_.c_str());
        std::remove((path_ + ".lock").c_str());  // PersistentCache's save lock
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// Fault-injection TCP relay: listens on an ephemeral loopback port and
/// forwards byte streams to one upstream endpoint. Faults are injected on
/// command, while connections are live:
///
///  * set_delay_ms(d)   — stall every forwarded chunk by d milliseconds
///                        (a slow or congested link);
///  * set_blackhole(on) — keep connections open but silently discard all
///                        forwarded bytes (packets "dropped" both ways);
///  * sever()           — cut every active relay mid-stream (both peers
///                        observe EOF/RST, like a yanked cable);
///  * set_refuse(on)    — accept then immediately close new connections
///                        (the endpoint is up but the service is not).
///
/// New connections keep relaying after sever(), so a re-dialing client can
/// reconnect *through* the proxy once the "cable" is plugged back in.
class FlakyProxy {
public:
    FlakyProxy(const std::string& upstream_host, std::uint16_t upstream_port)
        : upstream_host_(upstream_host), upstream_port_(upstream_port) {
        listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (listen_fd_ < 0) throw std::runtime_error("FlakyProxy: socket failed");
        const int one = 1;
        ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = 0;
        if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(listen_fd_, 16) != 0) {
            ::close(listen_fd_);
            throw std::runtime_error("FlakyProxy: cannot listen on loopback");
        }
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = ntohs(bound.sin_port);
        accept_thread_ = std::thread([this] { accept_loop(); });
    }

    ~FlakyProxy() {
        stopping_.store(true);
        ::shutdown(listen_fd_, SHUT_RDWR);
        if (accept_thread_.joinable()) accept_thread_.join();
        ::close(listen_fd_);
        sever();
        std::lock_guard<std::mutex> lock(relays_mutex_);
        for (Relay& r : relays_) {
            if (r.up.joinable()) r.up.join();
            if (r.down.joinable()) r.down.join();
            ::close(r.client_fd);
            ::close(r.upstream_fd);
        }
    }

    std::uint16_t port() const { return port_; }
    std::string endpoint() const { return "127.0.0.1:" + std::to_string(port_); }

    void set_delay_ms(int ms) { delay_ms_.store(ms); }
    void set_blackhole(bool on) { blackhole_.store(on); }
    void set_refuse(bool on) { refuse_.store(on); }

    /// Cut every active relay now; peers observe EOF on their next I/O.
    void sever() {
        std::lock_guard<std::mutex> lock(relays_mutex_);
        for (Relay& r : relays_) {
            ::shutdown(r.client_fd, SHUT_RDWR);
            ::shutdown(r.upstream_fd, SHUT_RDWR);
        }
    }

    /// Relays accepted over the proxy's lifetime (severed ones included).
    std::size_t relays_opened() const {
        std::lock_guard<std::mutex> lock(relays_mutex_);
        return relays_.size();
    }

private:
    struct Relay {
        int client_fd = -1;
        int upstream_fd = -1;
        std::thread up;    ///< client -> upstream
        std::thread down;  ///< upstream -> client
    };

    void accept_loop() {
        for (;;) {
            const int client = ::accept(listen_fd_, nullptr, nullptr);
            if (client < 0) {
                if (stopping_.load()) return;
                if (errno == EINTR || errno == ECONNABORTED) continue;
                return;
            }
            if (stopping_.load() || refuse_.load()) {
                ::close(client);
                if (stopping_.load()) return;
                continue;
            }
            const int upstream = connect_upstream();
            if (upstream < 0) {
                ::close(client);
                continue;
            }
            std::lock_guard<std::mutex> lock(relays_mutex_);
            relays_.emplace_back();
            Relay& r = relays_.back();
            r.client_fd = client;
            r.upstream_fd = upstream;
            r.up = std::thread([this, client, upstream] { pump(client, upstream); });
            r.down = std::thread([this, upstream, client] { pump(upstream, client); });
        }
    }

    int connect_upstream() const {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) return -1;
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(upstream_port_);
        if (::inet_pton(AF_INET, upstream_host_.c_str(), &addr.sin_addr) != 1 ||
            ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
            ::close(fd);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        return fd;
    }

    /// One direction of one relay; exits when either side dies (and takes
    /// the other direction down with it).
    void pump(int src, int dst) {
        unsigned char buf[4096];
        for (;;) {
            const ssize_t r = ::recv(src, buf, sizeof buf, 0);
            if (r <= 0) {
                if (r < 0 && errno == EINTR) continue;
                break;
            }
            const int delay = delay_ms_.load();
            if (delay > 0) std::this_thread::sleep_for(std::chrono::milliseconds(delay));
            if (blackhole_.load()) continue;  // the bytes vanish in transit
            if (::send(dst, buf, static_cast<std::size_t>(r), MSG_NOSIGNAL) !=
                static_cast<ssize_t>(r))
                break;
        }
        ::shutdown(src, SHUT_RDWR);
        ::shutdown(dst, SHUT_RDWR);
    }

    std::string upstream_host_;
    std::uint16_t upstream_port_ = 0;
    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> refuse_{false};
    std::atomic<bool> blackhole_{false};
    std::atomic<int> delay_ms_{0};
    std::thread accept_thread_;
    mutable std::mutex relays_mutex_;
    std::list<Relay> relays_;
};

}  // namespace ehdoe::net_test
