// Node power-model tests.
#include <gtest/gtest.h>

#include "node/power_model.hpp"

using namespace ehdoe::node;

TEST(PowerModel, StateCurrents) {
    NodePowerParams p;
    EXPECT_DOUBLE_EQ(p.current(NodeState::Off), 0.0);
    EXPECT_DOUBLE_EQ(p.current(NodeState::Sleep), p.i_sleep);
    EXPECT_DOUBLE_EQ(p.current(NodeState::Transmit), p.i_tx);
    EXPECT_DOUBLE_EQ(p.rail_power(NodeState::Transmit), p.supply_voltage * p.i_tx);
}

TEST(PowerModel, StoragePowerIncludesRegulatorLoss) {
    NodePowerParams p;
    EXPECT_NEAR(p.storage_power(NodeState::Idle),
                p.rail_power(NodeState::Idle) / p.regulator_efficiency, 1e-15);
    EXPECT_DOUBLE_EQ(p.storage_power(NodeState::Off), 0.0);
}

TEST(PowerModel, TxTimeScalesWithPayload) {
    NodePowerParams p;
    const double t64 = p.tx_time(64);
    const double t128 = p.tx_time(128);
    EXPECT_GT(t128, t64);
    // Exactly 8 bits per byte at the configured bitrate.
    EXPECT_NEAR(t128 - t64, 64.0 * 8.0 / p.radio_bitrate, 1e-15);
}

TEST(PowerModel, TaskEnergyDecomposition) {
    NodePowerParams p;
    const double e = p.task_energy(64);
    const double expected = p.storage_power(NodeState::Idle) * p.t_wakeup +
                            p.storage_power(NodeState::Sense) * p.t_sense +
                            p.storage_power(NodeState::Process) * p.t_process +
                            p.storage_power(NodeState::Transmit) * p.tx_time(64) +
                            p.storage_power(NodeState::Receive) * p.t_rx;
    EXPECT_NEAR(e, expected, 1e-15);
    EXPECT_GT(p.task_energy(256), p.task_energy(16));
}

TEST(PowerModel, TaskDurationSumsPhases) {
    NodePowerParams p;
    EXPECT_NEAR(p.task_duration(64),
                p.t_wakeup + p.t_sense + p.t_process + p.tx_time(64) + p.t_rx, 1e-15);
}

TEST(PowerModel, FreqCheckEnergy) {
    NodePowerParams p;
    EXPECT_NEAR(p.freq_check_energy(),
                p.storage_power(NodeState::FreqCheck) * p.t_freq_check, 1e-15);
}

TEST(PowerModel, RealisticMagnitudes) {
    // Guard against unit mistakes: sleep is microwatts, TX tens of mW.
    NodePowerParams p;
    EXPECT_LT(p.storage_power(NodeState::Sleep), 20e-6);
    EXPECT_GT(p.storage_power(NodeState::Transmit), 20e-3);
    EXPECT_LT(p.task_energy(64), 1e-3);   // < 1 mJ per task
    EXPECT_GT(p.task_energy(64), 10e-6);  // > 10 uJ per task
}

TEST(PowerModel, Validation) {
    NodePowerParams p;
    p.regulator_efficiency = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = NodePowerParams{};
    p.i_tx = -1.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
    p = NodePowerParams{};
    p.radio_bitrate = 0.0;
    EXPECT_THROW(p.validate(), std::invalid_argument);
}

class PayloadP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PayloadP, EnergyMonotoneInPayload) {
    NodePowerParams p;
    const std::size_t payload = GetParam();
    EXPECT_GT(p.task_energy(payload + 16), p.task_energy(payload));
    EXPECT_GT(p.task_duration(payload + 16), p.task_duration(payload));
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadP, ::testing::Values(16u, 32u, 64u, 128u, 240u));
