// End-to-end telemetry (core/telemetry.hpp + core/trace_merge.hpp): the
// log-bucketed latency histogram's index/floor/percentile/merge algebra,
// the span recorder's Chrome trace-event export, the determinism contract
// (tracing on vs off is bitwise identical across the in-process, exec and
// remote backends — the PR's acceptance criterion), clock re-anchoring in
// the trace merger, and a full round trip: two real ehdoe-eval-server
// daemons run with --trace, a traced client drives the S1 CCD through
// them, and the merged timeline carries exactly one server eval span per
// point evaluated.
#include <gtest/gtest.h>

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/inprocess_backend.hpp"
#include "core/perf_gate.hpp"
#include "core/scenario.hpp"
#include "core/telemetry.hpp"
#include "core/trace_merge.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/design.hpp"
#include "exec_test_utils.hpp"
#include "net_test_utils.hpp"

#ifndef EHDOE_EVAL_SERVER_BIN
#error "CMake must define EHDOE_EVAL_SERVER_BIN (the eval-server's path)"
#endif

using namespace ehdoe;
using core::telemetry::LatencyHistogram;
using ehdoe::num::Vector;

namespace {

/// The S1 CCD in natural units — the canonical workload of the
/// determinism tests.
std::vector<Vector> s1_ccd_points(const core::Scenario& sc) {
    const doe::DesignSpace space = sc.design_space();
    const doe::Design ccd = doe::central_composite(space.dimension());
    const num::Matrix natural = doe::to_natural(space, ccd);
    std::vector<Vector> points;
    points.reserve(natural.rows());
    for (std::size_t r = 0; r < natural.rows(); ++r) points.push_back(natural.row(r));
    return points;
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/// Find the event objects with `name` in a parsed trace.
std::vector<const core::JsonValue*> events_named(const core::JsonValue& trace,
                                                 const std::string& name) {
    std::vector<const core::JsonValue*> out;
    const core::JsonValue* events = core::json_lookup(trace, "traceEvents");
    if (!events) return out;
    for (const core::JsonValue& e : events->array) {
        const core::JsonValue* n = core::json_lookup(e, "name");
        if (n && n->kind == core::JsonValue::Kind::String && n->string == name)
            out.push_back(&e);
    }
    return out;
}

double number_field(const core::JsonValue& event, const std::string& path) {
    const core::JsonValue* v = core::json_lookup(event, path);
    if (!v || v->kind != core::JsonValue::Kind::Number)
        throw std::runtime_error("missing number field " + path);
    return v->number;
}

/// The recorder switch is process-global and enable() is sticky; every
/// test that touches it restores the default (disabled, empty) state so
/// suites stay order-independent.
class TelemetryTest : public ::testing::Test {
protected:
    void TearDown() override {
        core::telemetry::disable();
        core::telemetry::reset();
    }
};

}  // namespace

// ---------------------------------------------------------------------------
// Latency histogram algebra
// ---------------------------------------------------------------------------

TEST(LatencyHistogramTest, BucketIndexIsMonotonicAndFloorBrackets) {
    std::size_t prev = 0;
    // Dense sweep through the linear region, then geometric growth across
    // the log region: indexes never decrease, every value lands inside
    // [floor(index), floor(index + 1)).
    std::vector<std::uint64_t> values;
    for (std::uint64_t v = 0; v <= 200; ++v) values.push_back(v);
    for (std::uint64_t v = 256; v < (1ull << 50); v = v + v / 2) values.push_back(v);
    for (const std::uint64_t v : values) {
        const std::size_t idx = LatencyHistogram::bucket_index(v);
        ASSERT_LT(idx, LatencyHistogram::kBuckets) << "v=" << v;
        ASSERT_GE(idx, prev) << "v=" << v;
        prev = idx;
        ASSERT_LE(LatencyHistogram::bucket_floor(idx), v) << "v=" << v;
        if (idx + 1 < LatencyHistogram::kBuckets) {
            ASSERT_GT(LatencyHistogram::bucket_floor(idx + 1), v) << "v=" << v;
        }
    }
}

TEST(LatencyHistogramTest, ExactRankPercentiles) {
    LatencyHistogram h;
    EXPECT_EQ(h.percentile_us(50.0), 0.0);  // empty -> 0 by contract

    for (int i = 0; i < 50; ++i) h.record_us(100);
    for (int i = 0; i < 45; ++i) h.record_us(2000);
    for (int i = 0; i < 5; ++i) h.record_us(90000);
    ASSERT_EQ(h.total(), 100u);

    const auto floor_of = [](std::uint64_t us) {
        return static_cast<double>(
            LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(us)));
    };
    // Exact ranks: sample 50 is still a 100 µs one, 95 is a 2 ms one, 99
    // lands in the 90 ms tail. Values are bucket floors (~6% resolution).
    EXPECT_EQ(h.percentile_us(50.0), floor_of(100));
    EXPECT_EQ(h.percentile_us(95.0), floor_of(2000));
    EXPECT_EQ(h.percentile_us(99.0), floor_of(90000));
    EXPECT_EQ(h.percentile_us(100.0), floor_of(90000));
}

TEST(LatencyHistogramTest, MergeSubtractAndWireRoundTrip) {
    LatencyHistogram a;
    a.record_us(10);
    a.record_us(500);
    LatencyHistogram b;
    b.record_us(500);
    b.record_us(70000);

    LatencyHistogram merged = a;
    merged.merge(b);
    EXPECT_EQ(merged.total(), 4u);

    // Snapshot delta: record on top of a copy, subtract the snapshot, and
    // only the interval's samples remain (the bench idiom).
    LatencyHistogram later = a;
    later.record_us(9999);
    later.subtract(a);
    ASSERT_EQ(later.total(), 1u);
    EXPECT_EQ(later.percentile_us(50.0),
              static_cast<double>(
                  LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(9999))));

    // sparse() -> add_bucket() is the wire representation; it must round
    // trip losslessly.
    LatencyHistogram decoded;
    for (const auto& [index, count] : merged.sparse()) {
        decoded.add_bucket(static_cast<std::size_t>(index), count);
    }
    EXPECT_EQ(decoded.total(), merged.total());
    EXPECT_EQ(decoded.sparse(), merged.sparse());
    EXPECT_THROW(decoded.add_bucket(LatencyHistogram::kBuckets, 1), std::out_of_range);

    LatencyHistogram seconds;
    seconds.record_seconds(0.001);
    ASSERT_EQ(seconds.total(), 1u);
    EXPECT_EQ(seconds.percentile_us(50.0),
              static_cast<double>(
                  LatencyHistogram::bucket_floor(LatencyHistogram::bucket_index(1000))));
}

// ---------------------------------------------------------------------------
// Span recorder
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, DisabledRecorderRecordsNothing) {
    core::telemetry::reset();
    ASSERT_FALSE(core::telemetry::enabled());
    {
        core::telemetry::Span span("noop", "test");
        span.arg("n", std::uint64_t{1});
    }
    core::telemetry::instant("noop", "test");
    core::telemetry::counter("noop", "test", 1.0);
    EXPECT_EQ(core::telemetry::event_count(), 0u);
}

TEST_F(TelemetryTest, WriteJsonProducesValidChromeTrace) {
    core::telemetry::enable();
    core::telemetry::reset();
    core::telemetry::set_process_label("telemetry-unit-test");
    {
        core::telemetry::Span span("alpha", "unit");
        span.arg("rows", std::uint64_t{42});
        span.arg("where", std::string("here"));
    }
    std::thread other([] { core::telemetry::Span span("beta", "unit"); });
    other.join();
    core::telemetry::instant("mark", "unit");
    core::telemetry::counter("depth", "unit", 2.0);
    EXPECT_GE(core::telemetry::event_count(), 4u);

    exec_test::TempDir dir("telemetry-json");
    const std::string path = dir.path() + "/trace.json";
    ASSERT_TRUE(core::telemetry::write_json(path));

    const core::JsonValue trace = core::parse_json(slurp(path));
    const core::JsonValue* events = core::json_lookup(trace, "traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, core::JsonValue::Kind::Array);

    const auto alphas = events_named(trace, "alpha");
    ASSERT_EQ(alphas.size(), 1u);
    EXPECT_EQ(core::json_lookup(*alphas[0], "ph")->string, "X");
    EXPECT_GE(number_field(*alphas[0], "dur"), 0.0);
    EXPECT_EQ(number_field(*alphas[0], "args.rows"), 42.0);
    EXPECT_EQ(core::json_lookup(*alphas[0], "args.where")->string, "here");

    // The two spans ran on different threads -> distinct tids.
    const auto betas = events_named(trace, "beta");
    ASSERT_EQ(betas.size(), 1u);
    EXPECT_NE(number_field(*alphas[0], "tid"), number_field(*betas[0], "tid"));

    ASSERT_EQ(events_named(trace, "mark").size(), 1u);
    EXPECT_EQ(core::json_lookup(*events_named(trace, "mark")[0], "ph")->string, "i");
    ASSERT_EQ(events_named(trace, "depth").size(), 1u);
    EXPECT_EQ(core::json_lookup(*events_named(trace, "depth")[0], "ph")->string, "C");

    // Process metadata names the label set above.
    bool labelled = false;
    for (const core::JsonValue* meta : events_named(trace, "process_name")) {
        const core::JsonValue* name = core::json_lookup(*meta, "args.name");
        if (name && name->string == "telemetry-unit-test") labelled = true;
    }
    EXPECT_TRUE(labelled);
}

// ---------------------------------------------------------------------------
// Determinism contract: tracing on vs off is bitwise identical (the
// acceptance criterion), across all three backend families.
// ---------------------------------------------------------------------------

TEST_F(TelemetryTest, TracingOnVsOffBitwiseIdenticalInProcess) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    doe::RunnerOptions off;
    off.threads = 2;
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(sc.make_simulation(), off);
        base = runner.evaluate(points);
    }

    exec_test::TempDir dir("telemetry-inproc");
    doe::RunnerOptions on = off;
    on.trace_file = dir.path() + "/client.json";
    std::vector<doe::ResponseMap> traced;
    {
        doe::BatchRunner runner(sc.make_simulation(), on);
        traced = runner.evaluate(points);
    }

    ASSERT_EQ(traced.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(traced[i], base[i]);

    // The trace flushed on destruction and holds the runner's span tree.
    const core::JsonValue trace = core::parse_json(slurp(on.trace_file));
    EXPECT_GE(events_named(trace, "batch").size(), 1u);
    EXPECT_GE(events_named(trace, "dedup").size(), 1u);
    EXPECT_GE(events_named(trace, "task").size(), 1u);
}

TEST_F(TelemetryTest, TracingOnVsOffBitwiseIdenticalExec) {
    exec_test::TempDir dir("telemetry-exec");
    const std::string recipe = exec_test::write_file(dir, "s1.recipe",
                                                     exec_test::s1_recipe_text(30.0));
    const std::vector<Vector> points = exec_test::s1_points(6);

    doe::RunnerOptions off;
    off.recipe_file = recipe;
    off.threads = 2;
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(doe::Simulation{}, off);
        base = runner.evaluate(points);
    }

    doe::RunnerOptions on = off;
    on.trace_file = dir.path() + "/client.json";
    std::vector<doe::ResponseMap> traced;
    {
        doe::BatchRunner runner(doe::Simulation{}, on);
        traced = runner.evaluate(points);
    }

    ASSERT_EQ(traced.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(traced[i], base[i]);

    // One launch + run-point span per external simulator process.
    const core::JsonValue trace = core::parse_json(slurp(on.trace_file));
    EXPECT_EQ(events_named(trace, "run-point").size(), points.size());
    EXPECT_EQ(events_named(trace, "launch").size(), points.size());
}

TEST_F(TelemetryTest, TracingOnVsOffBitwiseIdenticalRemote) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    auto server = net_test::start_server(sc.make_simulation(), sc.fingerprint());
    const doe::RunnerOptions off =
        net_test::remote_options({net_test::endpoint_of(*server)}, sc.fingerprint());
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(sc.make_simulation(), off);
        base = runner.evaluate(points);
    }

    exec_test::TempDir dir("telemetry-remote");
    doe::RunnerOptions on = off;
    on.trace_file = dir.path() + "/client.json";
    std::vector<doe::ResponseMap> traced;
    {
        doe::BatchRunner runner(sc.make_simulation(), on);
        traced = runner.evaluate(points);
    }

    ASSERT_EQ(traced.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(traced[i], base[i]);

    // The client side of the wire shows up: a handshake carrying the v5
    // clock offset, dispatches and receives.
    const core::JsonValue trace = core::parse_json(slurp(on.trace_file));
    const auto handshakes = events_named(trace, "handshake");
    ASSERT_GE(handshakes.size(), 1u);
    bool offset_seen = false;
    for (const core::JsonValue* h : handshakes) {
        if (core::json_lookup(*h, "args.offset_us")) offset_seen = true;
    }
    EXPECT_TRUE(offset_seen);
    EXPECT_GE(events_named(trace, "dispatch").size(), 1u);
    EXPECT_GE(events_named(trace, "receive").size(), 1u);
}

// ---------------------------------------------------------------------------
// Trace merging: clock re-anchoring on synthetic inputs
// ---------------------------------------------------------------------------

TEST(TraceMergeTest, ShiftsServerClockOntoClientTimeline) {
    const std::string client = R"({"traceEvents":[
        {"name":"handshake","cat":"net","ph":"X","ts":1000,"dur":50,"pid":7,"tid":1,
         "args":{"endpoint":"127.0.0.1:9001","version":5,"offset_us":500}},
        {"name":"batch","cat":"runner","ph":"X","ts":1100,"dur":900,"pid":7,"tid":1,
         "args":{"rows":3}}
    ]})";
    // The server bound the wildcard address: the ":port" suffix must still
    // match the client's handshake endpoint.
    const std::string server = R"({"traceEvents":[
        {"name":"listening","cat":"server","ph":"i","ts":100,"pid":7,"tid":1,
         "args":{"endpoint":"0.0.0.0:9001"}},
        {"name":"eval","cat":"server","ph":"X","ts":700,"dur":100,"pid":7,"tid":2,"args":{}},
        {"name":"eval","cat":"server","ph":"X","ts":800,"dur":100,"pid":7,"tid":2,"args":{}},
        {"name":"eval","cat":"server","ph":"X","ts":900,"dur":50,"pid":7,"tid":3,"args":{}}
    ]})";

    const core::TraceMergeResult merged = core::merge_traces(client, {server});
    EXPECT_TRUE(merged.warnings.empty())
        << (merged.warnings.empty() ? "" : merged.warnings.front());
    EXPECT_EQ(merged.client_events, 2u);
    EXPECT_EQ(merged.server_events, 4u);
    EXPECT_EQ(merged.eval_spans, 3u);
    EXPECT_EQ(merged.batches, 1u);
    EXPECT_FALSE(merged.summary.empty());

    const core::JsonValue trace = core::parse_json(merged.json);
    // Server events shifted by offset_us = +500 onto the client clock and
    // renumbered into their own lane (client pid 1, first server pid 2).
    const auto evals = events_named(trace, "eval");
    ASSERT_EQ(evals.size(), 3u);
    std::vector<double> ts;
    for (const core::JsonValue* e : evals) {
        ts.push_back(number_field(*e, "ts"));
        EXPECT_EQ(number_field(*e, "pid"), 2.0);
    }
    std::sort(ts.begin(), ts.end());
    EXPECT_EQ(ts, (std::vector<double>{1200.0, 1300.0, 1400.0}));
    const auto batches = events_named(trace, "batch");
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(number_field(*batches[0], "pid"), 1.0);
}

TEST(TraceMergeTest, UnmatchedServerMergesUnshiftedWithWarning) {
    const std::string client = R"({"traceEvents":[
        {"name":"handshake","cat":"net","ph":"X","ts":1000,"dur":50,"pid":1,"tid":1,
         "args":{"endpoint":"127.0.0.1:9001","version":5,"offset_us":500}}
    ]})";
    const std::string stranger = R"({"traceEvents":[
        {"name":"listening","cat":"server","ph":"i","ts":100,"pid":1,"tid":1,
         "args":{"endpoint":"10.0.0.1:4217"}},
        {"name":"eval","cat":"server","ph":"X","ts":700,"dur":100,"pid":1,"tid":2,"args":{}}
    ]})";

    const core::TraceMergeResult merged = core::merge_traces(client, {stranger});
    ASSERT_EQ(merged.warnings.size(), 1u);
    EXPECT_NE(merged.warnings.front().find("10.0.0.1:4217"), std::string::npos);

    // Visible, never dropped: the eval span survives with its original ts.
    const core::JsonValue trace = core::parse_json(merged.json);
    const auto evals = events_named(trace, "eval");
    ASSERT_EQ(evals.size(), 1u);
    EXPECT_EQ(number_field(*evals[0], "ts"), 700.0);

    EXPECT_THROW(core::merge_traces("{\"notTraceEvents\":[]}", {}), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Round trip against real server binaries: the PR's other acceptance
// criterion — merged span count matches points evaluated.
// ---------------------------------------------------------------------------

namespace {

struct ShardProcess {
    pid_t pid = -1;
    int out_fd = -1;
    std::string endpoint;
    std::string trace_path;
};

/// Fork+exec one ehdoe-eval-server --trace and scrape its startup line for
/// the bound endpoint. The daemon writes its trace on SIGTERM.
ShardProcess spawn_shard(const std::string& trace_path) {
    int fds[2];
    EXPECT_EQ(::pipe(fds), 0);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        const char* bin = EHDOE_EVAL_SERVER_BIN;
        ::execl(bin, bin, "--scenario", "S1", "--duration", "30", "--workers", "1",
                "--trace", trace_path.c_str(), static_cast<char*>(nullptr));
        _exit(127);
    }
    ::close(fds[1]);

    // Read the "listening on HOST:PORT ..." line (std::endl-flushed by the
    // daemon before it parks in its signal loop).
    std::string line;
    char c = 0;
    while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    ShardProcess shard;
    shard.pid = pid;
    shard.out_fd = fds[0];
    shard.trace_path = trace_path;
    const std::string prefix = "listening on ";
    if (line.compare(0, prefix.size(), prefix) == 0) {
        const std::size_t end = line.find(' ', prefix.size());
        shard.endpoint = line.substr(prefix.size(), end - prefix.size());
    }
    EXPECT_FALSE(shard.endpoint.empty()) << "startup line: " << line;
    return shard;
}

void stop_shard(ShardProcess& shard) {
    if (shard.pid > 0) {
        ::kill(shard.pid, SIGTERM);
        int status = 0;
        ::waitpid(shard.pid, &status, 0);
        shard.pid = -1;
    }
    if (shard.out_fd >= 0) {
        ::close(shard.out_fd);
        shard.out_fd = -1;
    }
}

}  // namespace

TEST_F(TelemetryTest, MergedTraceOfRealFarmRunMatchesPointsEvaluated) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    exec_test::TempDir dir("telemetry-farm");
    ShardProcess shard0 = spawn_shard(dir.path() + "/shard0.json");
    ShardProcess shard1 = spawn_shard(dir.path() + "/shard1.json");
    ASSERT_FALSE(shard0.endpoint.empty());
    ASSERT_FALSE(shard1.endpoint.empty());

    const std::string client_trace = dir.path() + "/client.json";
    std::vector<doe::ResponseMap> got;
    std::size_t simulations = 0;
    {
        doe::RunnerOptions o = net_test::remote_options({shard0.endpoint, shard1.endpoint},
                                                        sc.fingerprint());
        o.trace_file = client_trace;
        doe::BatchRunner runner(core::Simulation{}, o);
        got = runner.evaluate(points);
        simulations = runner.stats().simulations;
    }
    // SIGTERM flushes each daemon's trace before exit.
    stop_shard(shard0);
    stop_shard(shard1);

    // The farm's answers are still the in-process answers.
    core::InProcessBackend reference(sc.make_simulation(), core::BackendOptions{});
    const auto base = reference.evaluate(points);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(got[i], base[i]);

    const core::TraceMergeResult merged = core::merge_trace_files(
        client_trace, {shard0.trace_path, shard1.trace_path});
    EXPECT_TRUE(merged.warnings.empty())
        << (merged.warnings.empty() ? "" : merged.warnings.front());
    EXPECT_GT(merged.client_events, 0u);
    EXPECT_GT(merged.server_events, 0u);
    EXPECT_GE(merged.batches, 1u);
    // One server eval span per point actually evaluated (dedup means
    // simulations, not raw design rows).
    EXPECT_GT(simulations, 0u);
    EXPECT_EQ(merged.eval_spans, simulations);
    EXPECT_FALSE(merged.summary.empty());

    // The merged output is a valid Chrome trace whose lanes are separated:
    // client pid 1, the two shards pid 2 and 3.
    const core::JsonValue trace = core::parse_json(merged.json);
    const core::JsonValue* events = core::json_lookup(trace, "traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, core::JsonValue::Kind::Array);
    EXPECT_EQ(events->array.size(), merged.client_events + merged.server_events);
    bool pid2 = false;
    bool pid3 = false;
    for (const core::JsonValue* e : events_named(trace, "eval")) {
        const double pid = number_field(*e, "pid");
        if (pid == 2.0) pid2 = true;
        if (pid == 3.0) pid3 = true;
    }
    EXPECT_TRUE(pid2 && pid3) << "both shards should have served points";
}
