// Factor coding / design-space tests.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/design.hpp"

using namespace ehdoe::doe;
using ehdoe::num::Vector;

TEST(Factor, LinearCodingRoundTrip) {
    Factor f{"duty", 0.001, 0.02, false};
    EXPECT_DOUBLE_EQ(f.to_natural(-1.0), 0.001);
    EXPECT_DOUBLE_EQ(f.to_natural(1.0), 0.02);
    EXPECT_NEAR(f.to_natural(0.0), 0.0105, 1e-12);
    for (double c : {-1.0, -0.3, 0.0, 0.7, 1.0}) {
        EXPECT_NEAR(f.to_coded(f.to_natural(c)), c, 1e-12);
    }
}

TEST(Factor, LogCodingIsGeometric) {
    Factor f{"C", 0.05, 0.5, true};
    EXPECT_NEAR(f.to_natural(0.0), std::sqrt(0.05 * 0.5), 1e-12);
    EXPECT_NEAR(f.to_coded(f.to_natural(0.42)), 0.42, 1e-12);
    EXPECT_THROW(f.to_coded(-1.0), std::invalid_argument);
}

TEST(Factor, Validation) {
    EXPECT_THROW((Factor{"", 0.0, 1.0, false}.validate()), std::invalid_argument);
    EXPECT_THROW((Factor{"x", 1.0, 1.0, false}.validate()), std::invalid_argument);
    EXPECT_THROW((Factor{"x", -1.0, 1.0, true}.validate()), std::invalid_argument);
}

TEST(DesignSpace, MapsVectors) {
    DesignSpace s({{"a", 0.0, 10.0, false}, {"b", 1.0, 100.0, true}});
    EXPECT_EQ(s.dimension(), 2u);
    const Vector nat = s.to_natural(Vector{0.0, 0.0});
    EXPECT_DOUBLE_EQ(nat[0], 5.0);
    EXPECT_NEAR(nat[1], 10.0, 1e-12);
    EXPECT_TRUE(ehdoe::num::approx_equal(s.to_coded(nat), Vector{0.0, 0.0}, 1e-12));
}

TEST(DesignSpace, IndexAndNames) {
    DesignSpace s({{"a", 0.0, 1.0, false}, {"b", 0.0, 1.0, false}});
    EXPECT_EQ(s.index_of("b"), 1u);
    EXPECT_THROW(s.index_of("zz"), std::invalid_argument);
    EXPECT_EQ(s.names()[0], "a");
    EXPECT_THROW(DesignSpace({{"a", 0.0, 1.0, false}, {"a", 0.0, 1.0, false}}),
                 std::invalid_argument);
    EXPECT_THROW(DesignSpace(std::vector<Factor>{}), std::invalid_argument);
}

TEST(DesignSpace, ClampAndContains) {
    DesignSpace s({{"a", 0.0, 1.0, false}});
    EXPECT_DOUBLE_EQ(s.clamp(Vector{1.7})[0], 1.0);
    EXPECT_DOUBLE_EQ(s.clamp(Vector{-1.7})[0], -1.0);
    EXPECT_TRUE(s.contains(Vector{0.99}));
    EXPECT_FALSE(s.contains(Vector{1.2}));
}

TEST(Design, AppendAndCenterPoints) {
    Design a;
    a.points = ehdoe::num::Matrix{{1.0, 1.0}, {-1.0, -1.0}};
    Design b;
    b.points = ehdoe::num::Matrix{{0.5, -0.5}};
    a.append(b);
    EXPECT_EQ(a.runs(), 3u);
    a.add_center_points(2);
    EXPECT_EQ(a.runs(), 5u);
    EXPECT_DOUBLE_EQ(a.points(4, 0), 0.0);
    Design mismatched;
    mismatched.points = ehdoe::num::Matrix{{1.0}};
    EXPECT_THROW(a.append(mismatched), std::invalid_argument);
}

TEST(Design, NaturalView) {
    DesignSpace s({{"a", 10.0, 20.0, false}});
    Design d;
    d.points = ehdoe::num::Matrix{{-1.0}, {0.0}, {1.0}};
    const auto nat = to_natural(s, d);
    EXPECT_DOUBLE_EQ(nat(0, 0), 10.0);
    EXPECT_DOUBLE_EQ(nat(1, 0), 15.0);
    EXPECT_DOUBLE_EQ(nat(2, 0), 20.0);
}

TEST(Design, MinPairwiseDistance) {
    ehdoe::num::Matrix pts{{0.0, 0.0}, {3.0, 4.0}, {0.0, 1.0}};
    EXPECT_DOUBLE_EQ(min_pairwise_distance(pts), 1.0);
}
