// Interpolation tests: linear tables and cubic splines.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/interp.hpp"

using namespace ehdoe::num;

TEST(LinearTable, InterpolatesAndClamps) {
    LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 30.0});
    EXPECT_DOUBLE_EQ(t(0.5), 5.0);
    EXPECT_DOUBLE_EQ(t(1.5), 20.0);
    EXPECT_DOUBLE_EQ(t(-5.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(t(9.0), 30.0);   // clamped
}

TEST(LinearTable, Derivative) {
    LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 30.0});
    EXPECT_DOUBLE_EQ(t.derivative(0.5), 10.0);
    EXPECT_DOUBLE_EQ(t.derivative(1.5), 20.0);
}

TEST(LinearTable, InverseMonotone) {
    LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 30.0});
    EXPECT_NEAR(t.inverse(5.0), 0.5, 1e-12);
    EXPECT_NEAR(t.inverse(20.0), 1.5, 1e-12);
    // Decreasing table.
    LinearTable d({0.0, 1.0}, {10.0, 0.0});
    EXPECT_NEAR(d.inverse(5.0), 0.5, 1e-12);
}

TEST(LinearTable, InverseRejectsNonMonotoneAndRange) {
    LinearTable t({0.0, 1.0, 2.0}, {0.0, 10.0, 5.0});
    EXPECT_THROW(t.inverse(3.0), std::runtime_error);
    LinearTable m({0.0, 1.0}, {0.0, 1.0});
    EXPECT_THROW(m.inverse(2.0), std::runtime_error);
}

TEST(LinearTable, ValidatesInput) {
    EXPECT_THROW(LinearTable({1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(LinearTable({1.0, 1.0}, {0.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(LinearTable({0.0, 1.0}, {0.0}), std::invalid_argument);
}

TEST(CubicSpline, PassesThroughKnots) {
    std::vector<double> xs{0.0, 1.0, 2.0, 3.0};
    std::vector<double> ys{1.0, 2.0, 0.0, 5.0};
    CubicSpline s(xs, ys);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        EXPECT_NEAR(s(xs[i]), ys[i], 1e-12);
    }
}

TEST(CubicSpline, TwoKnotsIsChord) {
    CubicSpline s({0.0, 2.0}, {0.0, 4.0});
    EXPECT_NEAR(s(1.0), 2.0, 1e-12);
    EXPECT_NEAR(s.derivative(1.0), 2.0, 1e-12);
}

TEST(CubicSpline, NaturalBoundaryConditions) {
    CubicSpline s({0.0, 1.0, 2.0, 3.0}, {0.0, 1.0, 4.0, 9.0});
    EXPECT_NEAR(s.second_derivative(0.0), 0.0, 1e-10);
    EXPECT_NEAR(s.second_derivative(3.0), 0.0, 1e-10);
}

TEST(CubicSpline, ApproximatesSmoothFunction) {
    // Dense knots on sin(x): interior error tiny.
    std::vector<double> xs, ys;
    for (int i = 0; i <= 20; ++i) {
        const double x = i * 0.1;
        xs.push_back(x);
        ys.push_back(std::sin(x));
    }
    CubicSpline s(xs, ys);
    for (double x = 0.3; x < 1.7; x += 0.07) {
        EXPECT_NEAR(s(x), std::sin(x), 1e-5);
        EXPECT_NEAR(s.derivative(x), std::cos(x), 1e-3);
    }
}

TEST(CubicSpline, DerivativeConsistentWithFiniteDifference) {
    CubicSpline s({0.0, 1.0, 2.0, 3.0, 4.0}, {0.0, 1.0, -1.0, 2.0, 0.5});
    const double h = 1e-6;
    for (double x : {0.4, 1.3, 2.6, 3.5}) {
        const double fd = (s(x + h) - s(x - h)) / (2.0 * h);
        EXPECT_NEAR(s.derivative(x), fd, 1e-5);
    }
}

TEST(CubicSpline, ContinuousFirstDerivativeAtKnots) {
    CubicSpline s({0.0, 1.0, 2.0, 3.0}, {0.0, 2.0, -1.0, 3.0});
    const double eps = 1e-9;
    for (double knot : {1.0, 2.0}) {
        EXPECT_NEAR(s.derivative(knot - eps), s.derivative(knot + eps), 1e-6);
    }
}
