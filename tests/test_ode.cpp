// Integrator accuracy, convergence order and cost accounting.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/ode.hpp"

using namespace ehdoe::num;

namespace {

// x' = -x, x(0) = 1 -> x(t) = e^-t.
const OdeRhs kDecay = [](double, const Vector& x) { return Vector{-x[0]}; };

// Harmonic oscillator x'' = -w^2 x as first-order system; energy preserved.
OdeRhs oscillator(double w) {
    return [w](double, const Vector& x) { return Vector{x[1], -w * w * x[0]}; };
}

}  // namespace

TEST(Euler, FirstOrderConvergence) {
    const double e1 = std::fabs(integrate_euler(kDecay, Vector{1.0}, 0.0, 1.0, 1e-2)
                                    .final_state()[0] - std::exp(-1.0));
    const double e2 = std::fabs(integrate_euler(kDecay, Vector{1.0}, 0.0, 1.0, 5e-3)
                                    .final_state()[0] - std::exp(-1.0));
    EXPECT_GT(e1 / e2, 1.7);  // halving h roughly halves the error
    EXPECT_LT(e1 / e2, 2.3);
}

TEST(Rk4, FourthOrderConvergence) {
    const double e1 = std::fabs(integrate_rk4(kDecay, Vector{1.0}, 0.0, 1.0, 1e-1)
                                    .final_state()[0] - std::exp(-1.0));
    const double e2 = std::fabs(integrate_rk4(kDecay, Vector{1.0}, 0.0, 1.0, 5e-2)
                                    .final_state()[0] - std::exp(-1.0));
    EXPECT_GT(e1 / e2, 12.0);  // ~16x per halving
    EXPECT_LT(e1 / e2, 20.0);
}

TEST(Rk4, OscillatorAccuracy) {
    const double w = 2.0;
    const OdeSolution s = integrate_rk4(oscillator(w), Vector{1.0, 0.0}, 0.0, 5.0, 1e-3);
    EXPECT_NEAR(s.final_state()[0], std::cos(w * 5.0), 1e-8);
    EXPECT_NEAR(s.final_state()[1], -w * std::sin(w * 5.0), 1e-7);
    EXPECT_EQ(s.rhs_evaluations, 4 * s.steps_taken);
}

TEST(Rkf45, MeetsTolerance) {
    Rkf45Options opt;
    opt.abs_tol = 1e-10;
    opt.rel_tol = 1e-8;
    const OdeSolution s = integrate_rkf45(kDecay, Vector{1.0}, 0.0, 2.0, opt);
    EXPECT_NEAR(s.final_state()[0], std::exp(-2.0), 1e-7);
    EXPECT_GT(s.steps_taken, 0u);
}

TEST(Rkf45, AdaptsStepOnStiffness) {
    // Fast transient then slow decay: expect far fewer steps than fixed-h at
    // equal accuracy would need.
    const OdeRhs rhs = [](double, const Vector& x) {
        return Vector{-100.0 * x[0], -0.1 * x[1]};
    };
    Rkf45Options opt;
    opt.h_max = 1.0;
    const OdeSolution s = integrate_rkf45(rhs, Vector{1.0, 1.0}, 0.0, 10.0, opt);
    EXPECT_NEAR(s.final_state()[1], std::exp(-1.0), 1e-4);
    EXPECT_LT(s.steps_taken, 5000u);
}

TEST(Trapezoidal, SecondOrderConvergence) {
    const double e1 = std::fabs(integrate_trapezoidal(kDecay, Vector{1.0}, 0.0, 1.0, 1e-1)
                                    .final_state()[0] - std::exp(-1.0));
    const double e2 = std::fabs(integrate_trapezoidal(kDecay, Vector{1.0}, 0.0, 1.0, 5e-2)
                                    .final_state()[0] - std::exp(-1.0));
    EXPECT_GT(e1 / e2, 3.0);  // ~4x per halving
    EXPECT_LT(e1 / e2, 5.0);
}

TEST(Trapezoidal, StableOnVeryStiffProblem) {
    // lambda = -1e5 with h = 1e-2: explicit methods explode, trapezoidal
    // stays bounded.
    const OdeRhs stiff = [](double, const Vector& x) { return Vector{-1e5 * x[0]}; };
    const OdeSolution s = integrate_trapezoidal(stiff, Vector{1.0}, 0.0, 0.1, 1e-2);
    EXPECT_LT(std::fabs(s.final_state()[0]), 1.0);
    EXPECT_GT(s.newton_iterations, 0u);
}

TEST(Trapezoidal, CountsNewtonWork) {
    const OdeSolution s =
        integrate_trapezoidal(oscillator(3.0), Vector{1.0, 0.0}, 0.0, 1.0, 1e-2);
    EXPECT_GE(s.newton_iterations, s.steps_taken);  // at least one per step
    EXPECT_GT(s.rhs_evaluations, s.newton_iterations);
}

TEST(OdeSolution, InterpolatesDenseOutput) {
    const OdeSolution s = integrate_rk4(kDecay, Vector{1.0}, 0.0, 1.0, 1e-2);
    const Vector mid = s.at(0.5);
    EXPECT_NEAR(mid[0], std::exp(-0.5), 1e-4);
    EXPECT_DOUBLE_EQ(s.at(-1.0)[0], 1.0);                         // clamp low
    EXPECT_DOUBLE_EQ(s.at(2.0)[0], s.final_state()[0]);           // clamp high
}

TEST(Ode, ValidatesArguments) {
    EXPECT_THROW(integrate_rk4(kDecay, Vector{1.0}, 1.0, 0.0, 1e-2), std::invalid_argument);
    EXPECT_THROW(integrate_rk4(kDecay, Vector{1.0}, 0.0, 1.0, -1e-2), std::invalid_argument);
    EXPECT_THROW(integrate_trapezoidal(kDecay, Vector{1.0}, 0.0, 1.0, 0.0),
                 std::invalid_argument);
}

// Property: all integrators agree on a smooth nonlinear problem.
class IntegratorAgreementP : public ::testing::TestWithParam<double> {};

TEST_P(IntegratorAgreementP, LogisticGrowth) {
    const double r = GetParam();
    // x' = r x (1 - x), x(0)=0.1 -> logistic closed form.
    const OdeRhs rhs = [r](double, const Vector& x) {
        return Vector{r * x[0] * (1.0 - x[0])};
    };
    const double x0 = 0.1, t1 = 2.0;
    const double exact = 1.0 / (1.0 + (1.0 / x0 - 1.0) * std::exp(-r * t1));
    EXPECT_NEAR(integrate_rk4(rhs, Vector{x0}, 0.0, t1, 1e-3).final_state()[0], exact, 1e-8);
    EXPECT_NEAR(integrate_rkf45(rhs, Vector{x0}, 0.0, t1).final_state()[0], exact, 1e-5);
    EXPECT_NEAR(integrate_trapezoidal(rhs, Vector{x0}, 0.0, t1, 1e-3).final_state()[0], exact,
                1e-5);
}

INSTANTIATE_TEST_SUITE_P(Rates, IntegratorAgreementP, ::testing::Values(0.5, 1.0, 2.0, 4.0));
