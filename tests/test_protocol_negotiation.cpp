// Protocol version negotiation across the supported wire range
// (kMinProtocolVersion..kProtocolVersion, today v4 -> v5): a
// previous-version client against a new server (and a new client against
// a previous-version-only server) completes the S1 CCD bitwise
// identically to in-process evaluation, a mixed-version farm serves one
// batch bitwise identically, stats replies take the shape of the
// requested version, and hostile or truncated batch headers fail the
// connection cleanly without taking the server down.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "core/inprocess_backend.hpp"
#include "core/scenario.hpp"
#include "doe/composite.hpp"
#include "doe/design.hpp"
#include "net/eval_server.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"
#include "net_test_utils.hpp"

using namespace ehdoe;
using namespace ehdoe::net_test;
using ehdoe::num::Vector;

namespace {

/// The S1 CCD in natural units: the canonical workload every equivalence
/// test in this suite pushes through the wire.
std::vector<Vector> s1_ccd_points(const core::Scenario& sc) {
    const doe::DesignSpace space = sc.design_space();
    const doe::Design ccd = doe::central_composite(space.dimension());
    const num::Matrix natural = doe::to_natural(space, ccd);
    std::vector<Vector> points;
    points.reserve(natural.rows());
    for (std::size_t r = 0; r < natural.rows(); ++r) points.push_back(natural.row(r));
    return points;
}

std::unique_ptr<net::EvalServer> start_versioned_server(core::Simulation sim,
                                                        const std::string& fingerprint,
                                                        std::uint32_t max_version) {
    net::EvalServerOptions o;
    o.workers = 2;
    o.fingerprint = fingerprint;
    o.max_protocol_version = max_version;
    auto server = std::make_unique<net::EvalServer>(std::move(sim), o);
    server->start();
    return server;
}

net::RemoteBackendOptions remote_opts(const std::vector<std::string>& endpoints,
                                      const std::string& fingerprint,
                                      std::uint32_t protocol_version) {
    net::RemoteBackendOptions o;
    for (const std::string& e : endpoints) o.endpoints.push_back(net::parse_endpoint(e));
    o.fingerprint = fingerprint;
    o.protocol_version = protocol_version;
    return o;
}

/// True when the peer closed: recv() returns 0 (EOF) or a hard error, and
/// never blocks forever (the fd has a receive timeout armed).
bool peer_closed(int fd) {
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    char byte = 0;
    return ::recv(fd, &byte, 1, 0) <= 0;
}

/// Complete a current-version eval handshake on a raw socket; returns the
/// accepted fd (the v5 welcome's clock sample is consumed and discarded).
int handshaken_connect(const net::EvalServer& server, const std::string& fingerprint) {
    const int fd = raw_connect(server.port());
    net::Hello hello;
    hello.fingerprint = fingerprint;
    EXPECT_TRUE(net::write_hello(fd, hello));
    std::uint64_t status = net::kStatusError;
    std::string message;
    std::uint64_t server_now_us = 0;
    EXPECT_TRUE(
        net::read_welcome(fd, status, message, net::kProtocolVersion, &server_now_us));
    EXPECT_EQ(status, net::kStatusOk);
    return fd;
}

}  // namespace

// ---------------------------------------------------------------------------
// A client pinned to the previous protocol version against a new server:
// the server answers with the requested version's reply shapes and the S1
// CCD lands bitwise identical.
// ---------------------------------------------------------------------------
TEST(ProtocolNegotiation, PreviousVersionClientAgainstNewServerIsBitwiseIdentical) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    core::InProcessBackend reference(sc.make_simulation(), core::BackendOptions{});
    const auto base = reference.evaluate(points);

    auto server = start_versioned_server(sc.make_simulation(), sc.fingerprint(),
                                         net::kProtocolVersion);
    net::RemoteBackend remote(
        remote_opts({endpoint_of(*server)}, sc.fingerprint(), net::kMinProtocolVersion));
    ASSERT_EQ(remote.negotiated_versions(),
              std::vector<std::uint32_t>{net::kMinProtocolVersion});

    const auto got = remote.evaluate(points);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(got[i], base[i]);
    EXPECT_EQ(server->points_served(), points.size());
}

// ---------------------------------------------------------------------------
// An auto-negotiating (newest-leading) client against a server pinned to
// the previous version: the rejection names the version the server
// speaks, the client re-dials at it, and the batch is still bitwise
// identical.
// ---------------------------------------------------------------------------
TEST(ProtocolNegotiation, NewClientDowngradesToPreviousVersionServer) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    core::InProcessBackend reference(sc.make_simulation(), core::BackendOptions{});
    const auto base = reference.evaluate(points);

    auto server = start_versioned_server(sc.make_simulation(), sc.fingerprint(),
                                         net::kMinProtocolVersion);
    net::RemoteBackend remote(remote_opts({endpoint_of(*server)}, sc.fingerprint(), 0));
    ASSERT_EQ(remote.negotiated_versions(),
              std::vector<std::uint32_t>{net::kMinProtocolVersion});
    // The downgrade cost one rejected dial before the re-dial stuck.
    EXPECT_EQ(server->handshakes_rejected(), 1u);

    const auto got = remote.evaluate(points);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(got[i], base[i]);
    EXPECT_EQ(server->points_served(), points.size());
}

// ---------------------------------------------------------------------------
// A mixed farm — one new shard, one previous-version-only shard — serves
// one batch at both versions at once, still bitwise identical to
// in-process (the v4/v5 reply shapes differ; the results must not).
// ---------------------------------------------------------------------------
TEST(ProtocolNegotiation, MixedVersionFarmServesOneBatchBitwiseIdentical) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    core::InProcessBackend reference(sc.make_simulation(), core::BackendOptions{});
    const auto base = reference.evaluate(points);

    auto s_new = start_versioned_server(sc.make_simulation(), sc.fingerprint(),
                                        net::kProtocolVersion);
    auto s_old = start_versioned_server(sc.make_simulation(), sc.fingerprint(),
                                        net::kMinProtocolVersion);
    net::RemoteBackend remote(remote_opts({endpoint_of(*s_new), endpoint_of(*s_old)},
                                          sc.fingerprint(), 0));
    const std::vector<std::uint32_t> expected{net::kProtocolVersion,
                                              net::kMinProtocolVersion};
    ASSERT_EQ(remote.negotiated_versions(), expected);

    const auto got = remote.evaluate(points);
    ASSERT_EQ(got.size(), base.size());
    for (std::size_t i = 0; i < base.size(); ++i) EXPECT_EQ(got[i], base[i]);
    // Both shards took part of the batch.
    EXPECT_GT(s_new->points_served(), 0u);
    EXPECT_GT(s_old->points_served(), 0u);
    EXPECT_EQ(s_new->points_served() + s_old->points_served(), points.size());
}

TEST(ProtocolNegotiation, PinnedVersionOutsideSupportedRangeThrows) {
    net::RemoteBackendOptions o =
        remote_opts({"127.0.0.1:1"}, "fp", net::kMinProtocolVersion - 1);
    EXPECT_THROW(net::RemoteBackend{o}, std::invalid_argument);
    o.protocol_version = net::kProtocolVersion + 1;
    EXPECT_THROW(net::RemoteBackend{o}, std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Batch-frame hardening: hostile v4 headers die before any allocation and
// never take the server down.
// ---------------------------------------------------------------------------
TEST(ProtocolNegotiation, OversizedBatchPointCountDropsConnection) {
    auto server = start_versioned_server(
        [](const Vector& nat) { return core::ResponseMap{{"y", nat[0]}}; }, "sim-id",
        net::kProtocolVersion);

    const int fd = handshaken_connect(*server, "sim-id");
    // A batch claiming 2^50 points: the sane-limit check must fail the
    // connection on the count field alone, before the dim even arrives.
    ASSERT_TRUE(net::write_u64(fd, std::uint64_t{1} << 50));
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
    EXPECT_EQ(server->points_served(), 0u);

    // An honest client is still served.
    net::RemoteBackend remote(remote_opts({endpoint_of(*server)}, "sim-id", 0));
    const auto got = remote.evaluate({Vector{2.0}, Vector{3.0}});
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].at("y"), 2.0);
    EXPECT_EQ(server->points_served(), 2u);
}

TEST(ProtocolNegotiation, OversizedBatchAreaDropsConnection) {
    auto server = start_versioned_server(
        [](const Vector& nat) { return core::ResponseMap{{"y", nat[0]}}; }, "sim-id",
        net::kProtocolVersion);

    const int fd = handshaken_connect(*server, "sim-id");
    // count and dim each pass the per-field limit, but their product would
    // demand a gigabyte-scale allocation: the area check fails it first.
    ASSERT_TRUE(net::write_u64(fd, std::uint64_t{1} << 20));
    ASSERT_TRUE(net::write_u64(fd, std::uint64_t{1} << 20));
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
    EXPECT_EQ(server->points_served(), 0u);
}

TEST(ProtocolNegotiation, TruncatedMidSubBatchDropsConnection) {
    auto server = start_versioned_server(
        [](const Vector& nat) { return core::ResponseMap{{"y", nat[0]}}; }, "sim-id",
        net::kProtocolVersion);

    const int fd = handshaken_connect(*server, "sim-id");
    // Claim three 2-dim points, deliver a point and a half, vanish.
    ASSERT_TRUE(net::write_u64(fd, 3));
    ASSERT_TRUE(net::write_u64(fd, 2));
    const double coords[3] = {1.0, 2.0, 3.0};
    ASSERT_TRUE(net::write_all(fd, coords, sizeof coords));
    ::shutdown(fd, SHUT_WR);
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
    // Nothing of the truncated sub-batch reached the workers.
    EXPECT_EQ(server->points_served(), 0u);
    EXPECT_EQ(server->points_failed(), 0u);
}

TEST(ProtocolNegotiation, StatsRequestAcceptsSupportedVersionRange) {
    auto server = start_versioned_server(
        [](const Vector& nat) { return core::ResponseMap{{"y", nat[0]}}; }, "sim-id",
        net::kProtocolVersion);

    // A previous-version monitor keeps polling a new server: the reply
    // takes the *requested* version's shape — exactly the v4 frame, no
    // histogram tail the old reader would choke on.
    const int fd = raw_connect(server->port());
    ASSERT_TRUE(net::write_stats_request(fd, net::kMinProtocolVersion));
    std::uint64_t status = net::kStatusError;
    net::ShardStats stats;
    std::string message;
    ASSERT_TRUE(net::read_stats_reply(fd, status, stats, message, net::kMinProtocolVersion));
    EXPECT_EQ(status, net::kStatusOk);
    EXPECT_EQ(stats.version, net::kProtocolVersion);
    EXPECT_TRUE(stats.latency_buckets.empty());
    // Nothing follows the v4 reply: the connection is closed, not holding
    // an unread v5 tail.
    EXPECT_TRUE(peer_closed(fd));
    ::close(fd);
    EXPECT_EQ(server->stats_served(), 1u);
    EXPECT_EQ(server->handshakes_rejected(), 0u);
}

// ---------------------------------------------------------------------------
// The v5 stats reply carries the shard's eval-latency histogram and
// percentiles once it has served points.
// ---------------------------------------------------------------------------
TEST(ProtocolNegotiation, V5StatsReplyCarriesLatencyHistogram) {
    auto server = start_versioned_server(
        [](const Vector& nat) { return core::ResponseMap{{"y", nat[0]}}; }, "sim-id",
        net::kProtocolVersion);

    net::RemoteBackend remote(remote_opts({endpoint_of(*server)}, "sim-id", 0));
    const auto got = remote.evaluate({Vector{2.0}, Vector{3.0}, Vector{4.0}});
    ASSERT_EQ(got.size(), 3u);

    const int fd = raw_connect(server->port());
    ASSERT_TRUE(net::write_stats_request(fd, net::kProtocolVersion));
    std::uint64_t status = net::kStatusError;
    net::ShardStats stats;
    std::string message;
    ASSERT_TRUE(net::read_stats_reply(fd, status, stats, message, net::kProtocolVersion));
    ::close(fd);
    EXPECT_EQ(status, net::kStatusOk);
    EXPECT_EQ(stats.points_served, 3u);
    ASSERT_FALSE(stats.latency_buckets.empty());
    std::uint64_t total = 0;
    for (const auto& [index, count] : stats.latency_buckets) {
        EXPECT_LT(index, net::kMaxHistogramBuckets);
        total += count;
    }
    EXPECT_EQ(total, 3u);  // one sample per served point
    // Percentiles are bucket floors: a sub-microsecond eval legitimately
    // reports 0, so only the ordering is asserted.
    EXPECT_GE(stats.latency_p95_us, stats.latency_p50_us);
    EXPECT_GE(stats.latency_p99_us, stats.latency_p95_us);
}
