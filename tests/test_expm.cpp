// Matrix exponential and ZOH discretization tests.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/expm.hpp"
#include "numerics/matrix.hpp"

using namespace ehdoe::num;

TEST(Expm, ZeroMatrixGivesIdentity) {
    EXPECT_TRUE(approx_equal(expm(Matrix(3, 3)), Matrix::identity(3), 1e-14));
}

TEST(Expm, DiagonalMatrix) {
    const Matrix e = expm(Matrix::diag(Vector{1.0, -2.0, 0.5}));
    EXPECT_NEAR(e(0, 0), std::exp(1.0), 1e-12);
    EXPECT_NEAR(e(1, 1), std::exp(-2.0), 1e-12);
    EXPECT_NEAR(e(2, 2), std::exp(0.5), 1e-12);
    EXPECT_NEAR(e(0, 1), 0.0, 1e-13);
}

TEST(Expm, NilpotentExact) {
    // exp([[0,1],[0,0]]) = [[1,1],[0,1]] exactly.
    Matrix n{{0.0, 1.0}, {0.0, 0.0}};
    const Matrix e = expm(n);
    EXPECT_NEAR(e(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(e(0, 1), 1.0, 1e-14);
    EXPECT_NEAR(e(1, 0), 0.0, 1e-14);
    EXPECT_NEAR(e(1, 1), 1.0, 1e-14);
}

TEST(Expm, RotationMatrix) {
    // exp([[0,-t],[t,0]]) = rotation by t.
    const double t = 1.3;
    Matrix a{{0.0, -t}, {t, 0.0}};
    const Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(t), 1e-12);
    EXPECT_NEAR(e(0, 1), -std::sin(t), 1e-12);
    EXPECT_NEAR(e(1, 0), std::sin(t), 1e-12);
}

TEST(Expm, LargeNormViaScaling) {
    Matrix a{{0.0, -40.0}, {40.0, 0.0}};
    const Matrix e = expm(a);
    EXPECT_NEAR(e(0, 0), std::cos(40.0), 1e-9);
    EXPECT_NEAR(e(1, 0), std::sin(40.0), 1e-9);
}

TEST(Expm, GroupProperty) {
    Matrix a{{0.1, 0.3}, {-0.2, 0.4}};
    const Matrix e1 = expm(a);
    const Matrix ehalf = expm(a * 0.5);
    EXPECT_TRUE(approx_equal(ehalf * ehalf, e1, 1e-12));
}

TEST(Expm, NonSquareThrows) { EXPECT_THROW(expm(Matrix(2, 3)), std::invalid_argument); }

TEST(DiscretizeZoh, MatchesAnalyticRc) {
    // RC circuit: v' = -(1/RC) v + (1/RC) u. Exact: vd = e^{-h/RC},
    // bd = 1 - e^{-h/RC}.
    const double tau = 1e-3;
    Matrix a{{-1.0 / tau}};
    Matrix b{{1.0 / tau}};
    const double h = 0.4e-3;
    const Discretized d = discretize_zoh(a, b, h);
    EXPECT_NEAR(d.ad(0, 0), std::exp(-h / tau), 1e-12);
    EXPECT_NEAR(d.bd(0, 0), 1.0 - std::exp(-h / tau), 1e-12);
}

TEST(DiscretizeZoh, SingularAHandled) {
    // Pure integrator: x' = u. Ad = 1, Bd = h.
    Matrix a{{0.0}};
    Matrix b{{1.0}};
    const Discretized d = discretize_zoh(a, b, 0.25);
    EXPECT_NEAR(d.ad(0, 0), 1.0, 1e-14);
    EXPECT_NEAR(d.bd(0, 0), 0.25, 1e-14);
}

TEST(DiscretizeZoh, DoubleIntegrator) {
    // x1' = x2, x2' = u: Ad = [[1,h],[0,1]], Bd = [h^2/2, h].
    Matrix a{{0.0, 1.0}, {0.0, 0.0}};
    Matrix b(2, 1);
    b(1, 0) = 1.0;
    const double h = 0.1;
    const Discretized d = discretize_zoh(a, b, h);
    EXPECT_NEAR(d.ad(0, 1), h, 1e-14);
    EXPECT_NEAR(d.bd(0, 0), 0.5 * h * h, 1e-14);
    EXPECT_NEAR(d.bd(1, 0), h, 1e-14);
}

// Property: stepping a stable 2nd-order system with the ZOH pair converges to
// the DC gain for constant input.
class ZohStepP : public ::testing::TestWithParam<double> {};

TEST_P(ZohStepP, ConvergesToDcGain) {
    const double h = GetParam();
    const double wn = 50.0, zeta = 0.3;
    Matrix a{{0.0, 1.0}, {-wn * wn, -2.0 * zeta * wn}};
    Matrix b(2, 1);
    b(1, 0) = wn * wn;  // DC gain 1
    const Discretized d = discretize_zoh(a, b, h);
    Vector x(2);
    Vector u{1.0};
    for (int i = 0; i < 20000; ++i) {
        x = d.ad * x + d.bd * u;
    }
    EXPECT_NEAR(x[0], 1.0, 1e-6);
    EXPECT_NEAR(x[1], 0.0, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Steps, ZohStepP, ::testing::Values(1e-4, 5e-4, 2e-3, 1e-2));
