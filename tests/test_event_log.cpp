// The structured event journal (core/event_log.hpp): every event kind the
// toolkit emits parses as one JSON object with the standard prologue, the
// journal interleaves onto a merged trace timeline via its "listening"
// clock anchor (`ehdoe-trace --events`), forced kill/redial incidents land
// in it, and — the acceptance criterion — turning the journal AND the
// metrics ring on changes no result bit across the in-process, exec,
// remote and store-backed stacks.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/event_log.hpp"
#include "core/perf_gate.hpp"
#include "core/scenario.hpp"
#include "core/trace_merge.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/design.hpp"
#include "doe/factorial.hpp"
#include "exec_test_utils.hpp"
#include "net/remote_backend.hpp"
#include "net_test_utils.hpp"
#include "store/store_server.hpp"

using namespace ehdoe;
using ehdoe::num::Vector;

namespace {

std::vector<std::string> journal_lines(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        if (!line.empty()) lines.push_back(line);
    }
    return lines;
}

/// Parse one journal line and check the standard prologue; returns the
/// parsed object (throws on malformed JSON, failing the test).
core::JsonValue parsed_event(const std::string& line) {
    const core::JsonValue obj = core::parse_json(line);
    EXPECT_EQ(obj.kind, core::JsonValue::Kind::Object) << line;
    const core::JsonValue* t_us = core::json_lookup(obj, "t_us");
    const core::JsonValue* wall_ms = core::json_lookup(obj, "wall_ms");
    const core::JsonValue* process = core::json_lookup(obj, "process");
    const core::JsonValue* kind = core::json_lookup(obj, "kind");
    EXPECT_TRUE(t_us && t_us->kind == core::JsonValue::Kind::Number) << line;
    EXPECT_TRUE(wall_ms && wall_ms->kind == core::JsonValue::Kind::Number) << line;
    EXPECT_TRUE(process && process->kind == core::JsonValue::Kind::String) << line;
    EXPECT_TRUE(kind && kind->kind == core::JsonValue::Kind::String) << line;
    return obj;
}

std::set<std::string> kinds_of(const std::vector<std::string>& lines) {
    std::set<std::string> kinds;
    for (const std::string& line : lines) {
        const core::JsonValue obj = parsed_event(line);
        const core::JsonValue* kind = core::json_lookup(obj, "kind");
        if (kind) kinds.insert(kind->string);
    }
    return kinds;
}

/// Every test closes the process-global journal so suites stay
/// order-independent.
class EventLogTest : public ::testing::Test {
protected:
    void TearDown() override { core::event_log::close(); }
};

/// The S1 CCD in natural units — the canonical workload of the
/// determinism tests.
std::vector<Vector> s1_ccd_points(const core::Scenario& sc) {
    const doe::DesignSpace space = sc.design_space();
    const doe::Design ccd = doe::central_composite(space.dimension());
    const num::Matrix natural = doe::to_natural(space, ccd);
    std::vector<Vector> points;
    points.reserve(natural.rows());
    for (std::size_t r = 0; r < natural.rows(); ++r) points.push_back(natural.row(r));
    return points;
}

void expect_identical(const std::vector<doe::ResponseMap>& got,
                      const std::vector<doe::ResponseMap>& want) {
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i], want[i]) << "point " << i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Schema: every kind the toolkit emits is one parseable JSON object with
// the standard prologue and its documented fields.
// ---------------------------------------------------------------------------
TEST_F(EventLogTest, EveryEventKindParsesWithThePrologue) {
    exec_test::TempDir dir("eventlog-schema");
    const std::string path = dir.path() + "/events.jsonl";
    ASSERT_TRUE(core::event_log::open(path));
    ASSERT_TRUE(core::event_log::enabled());
    core::event_log::set_process_label("schema-test");

    using core::event_log::Event;
    Event("listening").field("endpoint", "127.0.0.1:4217");
    Event("redial").field("endpoint", "127.0.0.1:4217");
    Event("rejoin").field("endpoint", "127.0.0.1:4217").field("version", std::uint64_t{7});
    Event("failover_redispatch")
        .field("endpoint", "127.0.0.1:4217")
        .field("pending", std::uint64_t{12});
    Event("worker_respawn").field("worker", std::uint64_t{2}).field("exit", "signal 9");
    Event("exec_timeout").field("point", std::uint64_t{5}).field("timeout_seconds", 1.5);
    Event("exec_relaunch")
        .field("point", std::uint64_t{5})
        .field("attempt", std::uint64_t{2})
        .field("exit", "status 3");
    Event("segment_quarantine")
        .field("segment", "segment-000001.log")
        .field("records_recovered", std::uint64_t{41});
    Event("version_downgrade")
        .field("component", "store")
        .field("endpoint", "127.0.0.1:4230")
        .field("from", std::uint64_t{7})
        .field("to", std::uint64_t{6});
    // Values needing escapes must not break the line's JSON.
    Event("redial").field("error", "connect: \"refused\"\nafter 2 tries \\ EOF");
    core::event_log::close();

    const std::vector<std::string> lines = journal_lines(path);
    ASSERT_EQ(lines.size(), 10u);
    const std::set<std::string> kinds = kinds_of(lines);
    for (const char* kind :
         {"listening", "redial", "rejoin", "failover_redispatch", "worker_respawn",
          "exec_timeout", "exec_relaunch", "segment_quarantine", "version_downgrade"}) {
        EXPECT_TRUE(kinds.count(kind)) << kind;
    }
    // Kind-specific fields survive with their types.
    const core::JsonValue rejoin = parsed_event(lines[2]);
    EXPECT_EQ(core::json_lookup(rejoin, "process")->string, "schema-test");
    EXPECT_EQ(core::json_lookup(rejoin, "version")->number, 7.0);
    const core::JsonValue timeout = parsed_event(lines[5]);
    EXPECT_EQ(core::json_lookup(timeout, "timeout_seconds")->number, 1.5);
    const core::JsonValue escaped = parsed_event(lines[9]);
    EXPECT_EQ(core::json_lookup(escaped, "error")->string,
              "connect: \"refused\"\nafter 2 tries \\ EOF");
}

TEST_F(EventLogTest, ClosedJournalWritesNothingAndEventsAreFreeToBuild) {
    ASSERT_FALSE(core::event_log::enabled());
    // Emission sites construct Events unconditionally; with the journal
    // closed this must be a no-op, not a crash or a stray file.
    core::event_log::Event("redial").field("endpoint", "127.0.0.1:1");

    exec_test::TempDir dir("eventlog-closed");
    const std::string path = dir.path() + "/events.jsonl";
    ASSERT_TRUE(core::event_log::open(path));
    core::event_log::close();
    EXPECT_FALSE(core::event_log::enabled());
    core::event_log::Event("redial").field("endpoint", "127.0.0.1:1");
    EXPECT_TRUE(journal_lines(path).empty()) << "events after close() must not write";

    // An unopenable path stays disabled instead of crashing later writes.
    EXPECT_FALSE(core::event_log::open(dir.path() + "/no/such/dir/e.jsonl"));
    EXPECT_FALSE(core::event_log::enabled());
}

// ---------------------------------------------------------------------------
// Timeline interleaving: `ehdoe-trace --events` anchors a daemon journal
// through its "listening" event, exactly like a server trace file.
// ---------------------------------------------------------------------------
TEST(EventJournalMerge, DaemonJournalAnchorsOntoTheClientTimeline) {
    const std::string client = R"({"traceEvents":[
        {"name":"handshake","cat":"net","ph":"X","ts":1000,"dur":50,"pid":7,"tid":1,
         "args":{"endpoint":"127.0.0.1:9001","version":7,"offset_us":500}}
    ]})";
    // A daemon journal: the wildcard-bound "listening" anchor plus one
    // incident, both on the server's clock.
    const std::string journal =
        "{\"t_us\":100,\"wall_ms\":1726000000000,\"process\":\"ehdoe-eval-server\","
        "\"kind\":\"listening\",\"endpoint\":\"0.0.0.0:9001\"}\n"
        "{\"t_us\":700,\"wall_ms\":1726000000600,\"process\":\"ehdoe-eval-server\","
        "\"kind\":\"worker_respawn\",\"worker\":2}\n";

    const core::TraceMergeResult merged = core::merge_traces(client, {}, {journal});
    EXPECT_TRUE(merged.warnings.empty())
        << (merged.warnings.empty() ? "" : merged.warnings.front());
    EXPECT_EQ(merged.journal_events, 2u);

    const core::JsonValue trace = core::parse_json(merged.json);
    const core::JsonValue* events = core::json_lookup(trace, "traceEvents");
    ASSERT_NE(events, nullptr);
    bool respawn_seen = false;
    for (const core::JsonValue& e : events->array) {
        const core::JsonValue* name = core::json_lookup(e, "name");
        if (!name || name->string != "worker_respawn") continue;
        respawn_seen = true;
        // Shifted by the handshake's offset_us onto the client clock, in a
        // journal lane of its own, with the kind-specific field preserved.
        EXPECT_EQ(core::json_lookup(e, "ts")->number, 1200.0);
        EXPECT_GE(core::json_lookup(e, "pid")->number, 100.0);
        EXPECT_EQ(core::json_lookup(e, "ph")->string, "i");
        EXPECT_EQ(core::json_lookup(e, "args.worker")->number, 2.0);
    }
    EXPECT_TRUE(respawn_seen);

    // A client journal (no "listening" kind) merges unshifted, silently.
    const std::string client_journal =
        "{\"t_us\":1500,\"wall_ms\":1726000000000,\"process\":\"ehdoe-client\","
        "\"kind\":\"redial\",\"endpoint\":\"127.0.0.1:9001\"}\n";
    const core::TraceMergeResult merged2 = core::merge_traces(client, {}, {client_journal});
    EXPECT_TRUE(merged2.warnings.empty());
    EXPECT_EQ(merged2.journal_events, 1u);
    const core::JsonValue trace2 = core::parse_json(merged2.json);
    for (const core::JsonValue& e : core::json_lookup(trace2, "traceEvents")->array) {
        const core::JsonValue* name = core::json_lookup(e, "name");
        if (name && name->string == "redial") {
            EXPECT_EQ(core::json_lookup(e, "ts")->number, 1500.0);
        }
    }
}

// ---------------------------------------------------------------------------
// Forced incidents: kill a shard mid-batch, restart it, and the journal
// narrates the failover and the rejoin.
// ---------------------------------------------------------------------------
TEST_F(EventLogTest, KillAndRestartIncidentsLandInTheJournal) {
    const doe::DesignSpace space({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});
    core::Simulation slow = [](const Vector& nat) -> std::map<std::string, double> {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        return {{"f", nat[0] + 2.0 * nat[1]}};
    };
    const std::string fp = "sim-slow";

    exec_test::TempDir dir("eventlog-incidents");
    const std::string path = dir.path() + "/events.jsonl";
    ASSERT_TRUE(core::event_log::open(path));
    core::event_log::set_process_label("ehdoe-client");

    auto s1 = net_test::start_server(slow, fp);
    auto s2 = net_test::start_server(slow, fp);
    const std::uint16_t port2 = s2->port();

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(net_test::endpoint_of(*s1)),
                    net::parse_endpoint(net_test::endpoint_of(*s2))};
    ro.fingerprint = fp;
    ro.redial_seconds = 0.0;  // every batch is a re-dial window
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    doe::BatchRunner runner(backend);

    // Batch 1: shoot shard 2 once it has served work; its pending points
    // re-dispatch to the survivor (-> failover_redispatch).
    std::thread killer([&] {
        while (s2->points_served() < 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        s2->stop();
    });
    const doe::RunResults r1 = runner.run_design(space, doe::full_factorial(2, 9));
    killer.join();
    EXPECT_EQ(r1.simulations, 81u);

    // Restart the shard on its old port; the next batch re-dials into it.
    s2.reset();
    s2 = net_test::start_server(slow, fp, 2, 1, port2);
    const doe::RunResults r2 = runner.run_design(space, doe::full_factorial(2, 10));
    // The grids share their 4 corners; the runner's memo covers those.
    EXPECT_EQ(r2.simulations, 96u);
    EXPECT_GE(backend->rejoins(), 1u);
    core::event_log::close();

    const std::vector<std::string> lines = journal_lines(path);
    ASSERT_FALSE(lines.empty());
    const std::set<std::string> kinds = kinds_of(lines);  // every line parses
    EXPECT_TRUE(kinds.count("failover_redispatch")) << "killed shard had pending points";
    EXPECT_TRUE(kinds.count("redial")) << "the dead endpoint was re-dialed";
    EXPECT_TRUE(kinds.count("rejoin")) << "the restarted shard rejoined";
}

// ---------------------------------------------------------------------------
// The determinism contract: journal + metrics on vs off is bitwise
// identical, per backend stack (the PR's acceptance criterion).
// ---------------------------------------------------------------------------
TEST_F(EventLogTest, JournalOnVsOffBitwiseIdenticalInProcess) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    doe::RunnerOptions off;
    off.threads = 2;
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(sc.make_simulation(), off);
        base = runner.evaluate(points);
    }

    exec_test::TempDir dir("eventlog-inproc");
    doe::RunnerOptions on = off;
    on.event_log_file = dir.path() + "/events.jsonl";
    std::vector<doe::ResponseMap> journaled;
    {
        doe::BatchRunner runner(sc.make_simulation(), on);
        journaled = runner.evaluate(points);
    }
    expect_identical(journaled, base);
}

TEST_F(EventLogTest, JournalOnVsOffBitwiseIdenticalExec) {
    exec_test::TempDir dir("eventlog-exec");
    const std::string recipe =
        exec_test::write_file(dir, "s1.recipe", exec_test::s1_recipe_text(30.0));
    const std::vector<Vector> points = exec_test::s1_points(6);

    doe::RunnerOptions off;
    off.recipe_file = recipe;
    off.threads = 2;
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(doe::Simulation{}, off);
        base = runner.evaluate(points);
    }

    doe::RunnerOptions on = off;
    on.event_log_file = dir.path() + "/events.jsonl";
    std::vector<doe::ResponseMap> journaled;
    {
        doe::BatchRunner runner(doe::Simulation{}, on);
        journaled = runner.evaluate(points);
    }
    expect_identical(journaled, base);
}

TEST_F(EventLogTest, JournalAndMetricsOnVsOffBitwiseIdenticalRemote) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    auto plain = net_test::start_server(sc.make_simulation(), sc.fingerprint());
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(
            core::Simulation{},
            net_test::remote_options({net_test::endpoint_of(*plain)}, sc.fingerprint()));
        base = runner.evaluate(points);
    }
    plain->stop();

    // The observed farm: metrics ring sampling on the shard, journal on the
    // client — the full health plane.
    net::EvalServerOptions o;
    o.workers = 2;
    o.fingerprint = sc.fingerprint();
    o.metrics_interval_seconds = 0.05;
    net::EvalServer observed(sc.make_simulation(), o);
    observed.start();

    exec_test::TempDir dir("eventlog-remote");
    std::vector<doe::ResponseMap> journaled;
    {
        doe::RunnerOptions ro = net_test::remote_options(
            {"127.0.0.1:" + std::to_string(observed.port())}, sc.fingerprint());
        ro.event_log_file = dir.path() + "/events.jsonl";
        doe::BatchRunner runner(core::Simulation{}, ro);
        journaled = runner.evaluate(points);
    }
    observed.stop();
    expect_identical(journaled, base);
}

TEST_F(EventLogTest, JournalAndMetricsOnVsOffBitwiseIdenticalStore) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::vector<Vector> points = s1_ccd_points(sc);

    doe::RunnerOptions off;
    off.threads = 2;
    std::vector<doe::ResponseMap> base;
    {
        doe::BatchRunner runner(sc.make_simulation(), off);
        base = runner.evaluate(points);
    }

    exec_test::TempDir dir("eventlog-store");
    store::StoreServerOptions so;
    so.dir = dir.path() + "/store";
    so.verbose = false;
    so.metrics_interval_seconds = 0.05;
    store::StoreServer server(so);
    server.start();

    doe::RunnerOptions on = off;
    on.cache_fingerprint = sc.fingerprint();
    on.store_endpoint = "127.0.0.1:" + std::to_string(server.port());
    on.event_log_file = dir.path() + "/events.jsonl";
    // Cold store: simulate and publish.
    {
        doe::BatchRunner runner(sc.make_simulation(), on);
        expect_identical(runner.evaluate(points), base);
    }
    // Warm store: every response served from the store, still bitwise.
    {
        doe::BatchRunner runner(sc.make_simulation(), on);
        expect_identical(runner.evaluate(points), base);
        EXPECT_EQ(runner.stats().simulations, 0u);
    }
    server.stop();
}
