// Storage-engine tests for the result store's SegmentLog (src/store/):
// round trip and reopen recovery, bitwise dedupe, segment rotation,
// torn-tail truncation (the expected crash signature), quarantine of
// corrupt segments (CRC damage must degrade reads, never poison them),
// offline compaction, and compact.tmp crash recovery.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "store/segment_log.hpp"

using namespace ehdoe;
using namespace ehdoe::store;

namespace {

namespace fs = std::filesystem;

/// A scratch directory that dies with the test (recursively).
class TempDir {
public:
    explicit TempDir(const std::string& stem) {
        static int seq = 0;
        path_ = (fs::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" + std::to_string(seq++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

/// Deliberately "irrational" doubles: a bitwise round trip through the log
/// must preserve every one of the 64 bits.
core::ResponseMap responses_for(int i) {
    return {{"E_harv", 1.0 / 3.0 + i}, {"packets", 0x1.fedcba987p-3 * (i + 1)}};
}

std::string key_for(int i) { return "fp/replicates=1|0x1." + std::to_string(i) + "p+0"; }

/// The live segment files of a log directory, sorted by name.
std::vector<fs::path> segment_files(const std::string& dir) {
    std::vector<fs::path> out;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("segment-", 0) == 0 && name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".log") == 0)
            out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t quarantined_files(const std::string& dir) {
    std::size_t n = 0;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.size() > 12 && name.compare(name.size() - 12, 12, ".quarantined") == 0) ++n;
    }
    return n;
}

/// Append raw bytes to a file (forging torn tails).
void append_raw(const fs::path& path, const void* data, std::size_t len) {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
}

/// Flip one byte in place at `offset` from the end of the file.
void flip_byte_from_end(const fs::path& path, std::size_t offset_from_end) {
    std::fstream io(path, std::ios::binary | std::ios::in | std::ios::out);
    io.seekg(0, std::ios::end);
    const auto size = static_cast<std::size_t>(io.tellg());
    ASSERT_GT(size, offset_from_end);
    const auto pos = static_cast<std::streamoff>(size - 1 - offset_from_end);
    io.seekg(pos);
    char byte = 0;
    io.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    io.seekp(pos);
    io.write(&byte, 1);
}

}  // namespace

TEST(Crc32, MatchesTheIeeeCheckValue) {
    // The canonical CRC-32 check: crc32("123456789") == 0xCBF43926.
    EXPECT_EQ(crc32_ieee("123456789", 9), 0xCBF43926u);
    EXPECT_EQ(crc32_ieee("", 0), 0u);
}

TEST(SegmentLog, RoundTripGetAfterPut) {
    TempDir dir("ehdoe-store-roundtrip");
    SegmentLog log(dir.path());
    EXPECT_EQ(log.size(), 0u);

    for (int i = 0; i < 3; ++i) EXPECT_TRUE(log.put(key_for(i), responses_for(i)));
    EXPECT_EQ(log.size(), 3u);
    EXPECT_EQ(log.counters().records_appended, 3u);

    for (int i = 0; i < 3; ++i) {
        core::ResponseMap got;
        ASSERT_TRUE(log.get(key_for(i), got)) << key_for(i);
        EXPECT_EQ(got, responses_for(i));
    }
    core::ResponseMap miss;
    EXPECT_FALSE(log.get("no-such-key", miss));
}

TEST(SegmentLog, ReopenRebuildsTheIndexBitwise) {
    TempDir dir("ehdoe-store-reopen");
    {
        SegmentLog log(dir.path());
        for (int i = 0; i < 5; ++i) log.put(key_for(i), responses_for(i));
    }
    SegmentLog reopened(dir.path());
    EXPECT_EQ(reopened.size(), 5u);
    EXPECT_EQ(reopened.counters().records_restored, 5u);
    EXPECT_EQ(reopened.counters().torn_tails_truncated, 0u);
    EXPECT_EQ(reopened.counters().quarantined_segments, 0u);
    for (int i = 0; i < 5; ++i) {
        core::ResponseMap got;
        ASSERT_TRUE(reopened.get(key_for(i), got));
        const core::ResponseMap want = responses_for(i);
        ASSERT_EQ(got.size(), want.size());
        auto ig = got.begin();
        auto iw = want.begin();
        for (; ig != got.end(); ++ig, ++iw) {
            EXPECT_EQ(ig->first, iw->first);
            EXPECT_EQ(std::memcmp(&ig->second, &iw->second, sizeof(double)), 0)
                << "bit drift through the log for " << ig->first;
        }
    }
}

TEST(SegmentLog, BitwiseDuplicatePutIsAcknowledgedNotAppended) {
    TempDir dir("ehdoe-store-dedupe");
    {
        SegmentLog log(dir.path());
        EXPECT_TRUE(log.put(key_for(0), responses_for(0)));
        EXPECT_FALSE(log.put(key_for(0), responses_for(0)));  // bitwise duplicate
        EXPECT_EQ(log.counters().duplicate_puts, 1u);
        EXPECT_EQ(log.counters().records_appended, 1u);

        // A re-put with *different* bits is a fresh record; rebuild is
        // last-writer-wins.
        core::ResponseMap changed = responses_for(0);
        changed["E_harv"] = changed["E_harv"] + 1.0;
        EXPECT_TRUE(log.put(key_for(0), changed));
        EXPECT_EQ(log.size(), 1u);
    }
    SegmentLog reopened(dir.path());
    EXPECT_EQ(reopened.size(), 1u);
    EXPECT_EQ(reopened.counters().records_restored, 2u);  // both appends replay
    core::ResponseMap got;
    ASSERT_TRUE(reopened.get(key_for(0), got));
    EXPECT_EQ(got.at("E_harv"), responses_for(0).at("E_harv") + 1.0)
        << "rebuild must be last-writer-wins";
}

TEST(SegmentLog, AppendsRotateIntoBoundedSegments) {
    TempDir dir("ehdoe-store-rotate");
    SegmentLogOptions o;
    o.max_segment_bytes = 256;  // a few records per segment
    o.verbose = false;
    {
        SegmentLog log(dir.path(), o);
        for (int i = 0; i < 20; ++i) log.put(key_for(i), responses_for(i));
        EXPECT_GT(log.segment_count(), 2u) << "rotation never sealed a segment";
        EXPECT_EQ(log.segment_count(), segment_files(dir.path()).size());
    }
    SegmentLog reopened(dir.path(), o);
    EXPECT_EQ(reopened.size(), 20u);
    for (int i = 0; i < 20; ++i) {
        core::ResponseMap got;
        EXPECT_TRUE(reopened.get(key_for(i), got)) << "lost across rotation: " << key_for(i);
    }
}

TEST(SegmentLog, TornTailOnTheNewestSegmentIsTruncatedAndAppendingResumes) {
    TempDir dir("ehdoe-store-torn");
    {
        SegmentLog log(dir.path());
        for (int i = 0; i < 3; ++i) log.put(key_for(i), responses_for(i));
    }
    // Forge the crash signature: a record header claiming a 64-byte body,
    // followed by only 8 bytes of it, at the tail of the newest segment.
    const auto segments = segment_files(dir.path());
    ASSERT_EQ(segments.size(), 1u);
    const std::uint32_t magic = 0x53524845u;  // "EHRS"
    const std::uint32_t crc = 0;
    const std::uint64_t len = 64;
    unsigned char partial[16 + 8] = {};
    std::memcpy(partial, &magic, sizeof magic);
    std::memcpy(partial + 4, &crc, sizeof crc);
    std::memcpy(partial + 8, &len, sizeof len);
    append_raw(segments[0], partial, sizeof partial);
    const auto torn_size = fs::file_size(segments[0]);

    {
        SegmentLog log(dir.path(), {8u << 20, false});
        EXPECT_EQ(log.counters().torn_tails_truncated, 1u);
        EXPECT_EQ(log.counters().quarantined_segments, 0u);
        EXPECT_EQ(log.size(), 3u) << "the whole records before the tear must survive";
        EXPECT_LT(fs::file_size(segments[0]), torn_size) << "the tail was not cut";

        // Appending resumes in the same segment past the cut.
        EXPECT_TRUE(log.put(key_for(3), responses_for(3)));
    }
    SegmentLog again(dir.path());
    EXPECT_EQ(again.size(), 4u);
    EXPECT_EQ(again.counters().torn_tails_truncated, 0u) << "the truncation must be durable";
}

TEST(SegmentLog, CrcDamageQuarantinesTheSegmentAndKeepsTheCleanPrefix) {
    TempDir dir("ehdoe-store-quarantine");
    {
        SegmentLog log(dir.path());
        for (int i = 0; i < 4; ++i) log.put(key_for(i), responses_for(i));
    }
    // Flip a byte inside the *last* record's body: its CRC no longer
    // matches, which is damage (not a torn tail), even on the newest
    // segment — the good prefix stays, the segment is set aside.
    const auto segments = segment_files(dir.path());
    ASSERT_EQ(segments.size(), 1u);
    flip_byte_from_end(segments[0], 2);

    SegmentLog log(dir.path(), {8u << 20, false});
    EXPECT_EQ(log.counters().quarantined_segments, 1u);
    EXPECT_EQ(log.counters().torn_tails_truncated, 0u);
    EXPECT_EQ(quarantined_files(dir.path()), 1u) << "the damaged file must be set aside";
    EXPECT_EQ(log.size(), 3u) << "records before the damage must stay served";
    core::ResponseMap got;
    EXPECT_TRUE(log.get(key_for(0), got));
    EXPECT_FALSE(log.get(key_for(3), got))
        << "the damaged record must read as a miss, not a wrong answer";

    // The log stays writable: a fresh segment opens past the quarantined one.
    EXPECT_TRUE(log.put(key_for(9), responses_for(9)));
    EXPECT_TRUE(log.get(key_for(9), got));
}

TEST(SegmentLog, TornTailOnASealedSegmentIsQuarantinedNotTruncated) {
    TempDir dir("ehdoe-store-sealed");
    SegmentLogOptions o;
    o.max_segment_bytes = 256;
    o.verbose = false;
    std::size_t before = 0;
    {
        SegmentLog log(dir.path(), o);
        for (int i = 0; i < 12; ++i) log.put(key_for(i), responses_for(i));
        ASSERT_GT(log.segment_count(), 2u);
        before = log.size();
    }
    // Truncate the *first* (sealed) segment mid-record: a tear anywhere but
    // the newest segment cannot be a crash tail — it is damage.
    const auto segments = segment_files(dir.path());
    fs::resize_file(segments.front(), fs::file_size(segments.front()) - 5);

    SegmentLog log(dir.path(), o);
    EXPECT_EQ(log.counters().quarantined_segments, 1u);
    EXPECT_EQ(log.counters().torn_tails_truncated, 0u);
    EXPECT_LT(log.size(), before);
    EXPECT_GT(log.size(), 0u) << "the other segments' records must survive";
}

TEST(SegmentLog, CompactionCollapsesTheChainAndDropsSupersededRecords) {
    TempDir dir("ehdoe-store-compact");
    SegmentLogOptions o;
    o.max_segment_bytes = 256;
    o.verbose = false;
    SegmentLog log(dir.path(), o);
    for (int i = 0; i < 16; ++i) log.put(key_for(i), responses_for(i));
    // Supersede half the keys so compaction has something to drop.
    for (int i = 0; i < 8; ++i) {
        core::ResponseMap changed = responses_for(i);
        changed["E_harv"] = static_cast<double>(1000 + i);
        log.put(key_for(i), changed);
    }
    ASSERT_GT(log.segment_count(), 2u);
    const std::size_t keys = log.size();

    log.compact();
    EXPECT_EQ(log.segment_count(), 1u);
    EXPECT_EQ(log.size(), keys);
    EXPECT_EQ(segment_files(dir.path()).size(), 1u);
    EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "compact.tmp"));

    // The compacted chain answers with the latest values, survives a
    // reopen, and stays appendable.
    core::ResponseMap got;
    ASSERT_TRUE(log.get(key_for(0), got));
    EXPECT_EQ(got.at("E_harv"), 1000.0);
    EXPECT_TRUE(log.put(key_for(99), responses_for(99)));

    SegmentLog reopened(dir.path(), o);
    EXPECT_EQ(reopened.size(), keys + 1);
    EXPECT_EQ(reopened.counters().records_restored, keys + 1)
        << "compaction must have dropped every superseded record";
}

TEST(SegmentLog, OrphanedCompactTmpIsAdoptedOnlyWhenTheOldChainIsGone) {
    TempDir dir("ehdoe-store-orphan");
    {
        SegmentLog log(dir.path());
        for (int i = 0; i < 3; ++i) log.put(key_for(i), responses_for(i));
    }
    const auto segments = segment_files(dir.path());
    ASSERT_EQ(segments.size(), 1u);

    {
        // Crash *before* the old chain was deleted: the orphan is stale
        // scratch and must be discarded in favour of the segments.
        std::ofstream(fs::path(dir.path()) / "compact.tmp") << "stale scratch";
        SegmentLog log(dir.path(), {8u << 20, false});
        EXPECT_EQ(log.size(), 3u);
        EXPECT_FALSE(fs::exists(fs::path(dir.path()) / "compact.tmp"));
        EXPECT_EQ(log.counters().quarantined_segments, 0u);
    }
    {
        // Crash *after* the delete, before the rename: compact.tmp is the
        // only copy of the table and must be adopted as segment 1.
        fs::rename(segment_files(dir.path()).front(),
                   fs::path(dir.path()) / "compact.tmp");
        SegmentLog log(dir.path());
        EXPECT_EQ(log.size(), 3u);
        EXPECT_EQ(log.counters().records_restored, 3u);
        EXPECT_TRUE(fs::exists(fs::path(dir.path()) / "segment-000001.log"));
        core::ResponseMap got;
        EXPECT_TRUE(log.get(key_for(2), got));
    }
}
