// Optimizer suite tests: local searches and global heuristics, plus the
// batch-parallel population paths (GA generations / SA restart chains
// through a BatchObjective) which must match the serial paths bitwise.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "doe/batch_runner.hpp"
#include "opt/anneal.hpp"
#include "opt/genetic.hpp"
#include "opt/gradient.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern.hpp"

using namespace ehdoe::opt;
using ehdoe::num::Vector;

namespace {

// Smooth bowl, minimum at (0.3, -0.4), value 1.
double bowl(const Vector& x) {
    return 1.0 + (x[0] - 0.3) * (x[0] - 0.3) + 2.0 * (x[1] + 0.4) * (x[1] + 0.4);
}

// Rastrigin-lite: multimodal with global minimum at origin.
double multimodal(const Vector& x) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        v += x[i] * x[i] - 0.3 * std::cos(6.0 * M_PI * x[i]) + 0.3;
    }
    return v;
}

const Bounds kCube2 = Bounds::coded_cube(2);

}  // namespace

TEST(Bounds, Basics) {
    EXPECT_EQ(kCube2.dimension(), 2u);
    EXPECT_TRUE(kCube2.contains(Vector{0.5, -0.5}));
    EXPECT_FALSE(kCube2.contains(Vector{1.5, 0.0}));
    EXPECT_DOUBLE_EQ(kCube2.clamp(Vector{2.0, -3.0})[0], 1.0);
    Bounds bad;
    bad.lo = Vector{0.0};
    bad.hi = Vector{0.0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(NelderMead, FindsBowlMinimum) {
    const OptResult r = nelder_mead(bowl, kCube2, Vector{0.9, 0.9});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.x[1], -0.4, 1e-4);
    EXPECT_NEAR(r.value, 1.0, 1e-7);
    EXPECT_GT(r.evaluations, 0u);
}

TEST(NelderMead, RespectsBoundsWhenMinimumOutside) {
    // Shift the bowl minimum outside the cube: solution lands on the face.
    const Objective f = [](const Vector& x) {
        return (x[0] - 2.0) * (x[0] - 2.0) + x[1] * x[1];
    };
    const OptResult r = nelder_mead(f, kCube2, Vector{0.0, 0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 0.0, 1e-4);
}

TEST(GradientDescent, AnalyticGradient) {
    const GradientFn grad = [](const Vector& x) {
        return Vector{2.0 * (x[0] - 0.3), 4.0 * (x[1] + 0.4)};
    };
    const OptResult r = gradient_descent(bowl, grad, kCube2, Vector{-0.8, 0.8});
    EXPECT_NEAR(r.x[0], 0.3, 1e-5);
    EXPECT_NEAR(r.x[1], -0.4, 1e-5);
}

TEST(GradientDescent, NumericGradient) {
    const OptResult r = gradient_descent(bowl, kCube2, Vector{-0.8, 0.8});
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(PatternSearch, FindsBowlMinimum) {
    const OptResult r = pattern_search(bowl, kCube2, Vector{0.9, -0.9});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.x[1], -0.4, 1e-4);
}

TEST(Genetic, FindsGlobalOnMultimodal) {
    GeneticOptions o;
    o.population = 60;
    o.generations = 80;
    o.seed = 9;
    const OptResult r = genetic_minimize(multimodal, kCube2, o);
    EXPECT_NEAR(r.x[0], 0.0, 0.05);
    EXPECT_NEAR(r.x[1], 0.0, 0.05);
    EXPECT_LT(r.value, 0.05);
}

TEST(Genetic, EvaluationBudgetAccounted) {
    GeneticOptions o;
    o.population = 20;
    o.generations = 10;
    const OptResult r = genetic_minimize(bowl, kCube2, o);
    // Initial pop + (pop - elites) per generation.
    EXPECT_EQ(r.evaluations, 20u + 10u * (20u - o.elites));
}

TEST(Genetic, StallStopsEarly) {
    GeneticOptions o;
    o.generations = 500;
    o.stall_generations = 5;
    o.seed = 4;
    const OptResult r = genetic_minimize(bowl, kCube2, o);
    EXPECT_LT(r.iterations, 500u);
    EXPECT_TRUE(r.converged);
}

TEST(Genetic, Validation) {
    GeneticOptions o;
    o.population = 2;
    EXPECT_THROW(genetic_minimize(bowl, kCube2, o), std::invalid_argument);
    o = GeneticOptions{};
    o.elites = o.population;
    EXPECT_THROW(genetic_minimize(bowl, kCube2, o), std::invalid_argument);
}

TEST(Anneal, FindsGlobalOnMultimodal) {
    AnnealOptions o;
    o.seed = 21;
    o.moves_per_epoch = 60;
    const OptResult r = simulated_annealing(multimodal, kCube2, Vector{0.8, -0.8}, o);
    EXPECT_LT(r.value, 0.1);
}

TEST(Anneal, Validation) {
    AnnealOptions o;
    o.t_final = 2.0;  // above t_initial
    EXPECT_THROW(simulated_annealing(bowl, kCube2, Vector{0.0, 0.0}, o),
                 std::invalid_argument);
    o = AnnealOptions{};
    o.cooling = 1.5;
    EXPECT_THROW(simulated_annealing(bowl, kCube2, Vector{0.0, 0.0}, o),
                 std::invalid_argument);
}

TEST(MultiStart, PicksBestOfStarts) {
    ehdoe::num::Matrix starts{{-0.9, -0.9}, {0.9, 0.9}, {0.0, 0.0}};
    const auto optimizer = [&](const Vector& x0) {
        return nelder_mead(multimodal, kCube2, x0);
    };
    const OptResult r = multi_start(optimizer, starts);
    EXPECT_LT(r.value, 0.05);
    EXPECT_GT(r.evaluations, 0u);
}

TEST(Negated, TurnsMaximizationIntoMinimization) {
    const Objective f = [](const Vector& x) { return -(x[0] - 0.5) * (x[0] - 0.5); };
    const OptResult r = nelder_mead(negated(f), Bounds::coded_cube(1), Vector{0.0});
    EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

namespace {

/// Batch objective that routes every population through a multi-threaded
/// BatchRunner — the "direct on the (fake) simulator, but parallel" path.
/// Also hands back the runner so tests can audit simulation counts.
struct RunnerBackedObjective {
    explicit RunnerBackedObjective(std::size_t threads) {
        ehdoe::doe::RunnerOptions o;
        o.threads = threads;
        o.batch_size = 2;  // force real batching/interleaving
        runner = std::make_shared<ehdoe::doe::BatchRunner>(
            [](const Vector& x) {
                return std::map<std::string, double>{{"y", multimodal(x)}};
            },
            o);
    }
    BatchObjective batch() const {
        auto r = runner;
        return [r](const std::vector<Vector>& pts) {
            const auto rows = r->evaluate(pts);
            std::vector<double> values;
            values.reserve(rows.size());
            for (const auto& m : rows) values.push_back(m.at("y"));
            return values;
        };
    }
    std::shared_ptr<ehdoe::doe::BatchRunner> runner;
};

}  // namespace

TEST(Genetic, BatchParallelMatchesSerialBitwise) {
    GeneticOptions o;
    o.population = 24;
    o.generations = 15;
    o.seed = 11;
    const OptResult serial = genetic_minimize(multimodal, kCube2, o);

    RunnerBackedObjective direct(4);
    const OptResult parallel = genetic_minimize(direct.batch(), kCube2, o);

    // The contract: identical trajectory endpoint, value and accounting.
    ASSERT_EQ(parallel.x.size(), serial.x.size());
    for (std::size_t i = 0; i < serial.x.size(); ++i) {
        EXPECT_EQ(parallel.x[i], serial.x[i]) << i;  // bitwise, not approx
    }
    EXPECT_EQ(parallel.value, serial.value);
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.iterations, serial.iterations);
    // The engine's memoization means revisited genomes (elites are not
    // re-evaluated, but mutation can recreate a point) cost nothing extra;
    // simulations never exceed the serial path's evaluation count.
    EXPECT_LE(direct.runner->stats().simulations, serial.evaluations);
}

TEST(Anneal, BatchParallelRestartsMatchSerialBitwise) {
    AnnealOptions o;
    o.seed = 7;
    o.moves_per_epoch = 10;
    o.restarts = 3;
    const OptResult serial = simulated_annealing(multimodal, kCube2, Vector{0.8, -0.8}, o);

    RunnerBackedObjective direct(3);
    const OptResult parallel =
        simulated_annealing(direct.batch(), kCube2, Vector{0.8, -0.8}, o);

    ASSERT_EQ(parallel.x.size(), serial.x.size());
    for (std::size_t i = 0; i < serial.x.size(); ++i) {
        EXPECT_EQ(parallel.x[i], serial.x[i]) << i;
    }
    EXPECT_EQ(parallel.value, serial.value);
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.iterations, serial.iterations);
}

TEST(Anneal, RestartsBeatSingleChainOnMultimodal) {
    AnnealOptions one;
    one.seed = 3;
    one.moves_per_epoch = 8;
    AnnealOptions many = one;
    many.restarts = 4;
    const OptResult a = simulated_annealing(multimodal, kCube2, Vector{0.9, 0.9}, one);
    const OptResult b = simulated_annealing(multimodal, kCube2, Vector{0.9, 0.9}, many);
    EXPECT_LE(b.value, a.value);  // more chains can only improve the best
    EXPECT_EQ(b.evaluations, 4u * a.evaluations);
}

TEST(CountedObjective, ExactUnderConcurrentInvocation) {
    // The GA/SA objective is now invoked from evaluation-backend worker
    // threads; the count must stay exact, not approximately right.
    CountedObjective obj([](const Vector& x) { return x[0]; });
    constexpr std::size_t kThreads = 4;
    constexpr std::size_t kCallsPerThread = 5000;
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < kThreads; ++t) {
        threads.emplace_back([&obj] {
            const Vector x{1.0};
            for (std::size_t i = 0; i < kCallsPerThread; ++i) obj(x);
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(obj.count(), kThreads * kCallsPerThread);
}

TEST(CountedBatchObjective, CountsPointsAndEnforcesSize) {
    CountedBatchObjective counted(lift([](const Vector& x) { return x[0] * 2.0; }));
    const std::vector<Vector> pts{Vector{1.0}, Vector{2.0}, Vector{3.0}};
    const std::vector<double> v = counted(pts);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v[1], 4.0);
    EXPECT_EQ(counted.count(), 3u);

    CountedBatchObjective broken([](const std::vector<Vector>& xs) {
        return std::vector<double>(xs.size() + 1, 0.0);
    });
    EXPECT_THROW(broken(pts), std::runtime_error);
    EXPECT_EQ(broken.count(), 0u);  // nothing legitimate was evaluated
}

// Property: every local optimizer solves a rotated quadratic from any corner.
class LocalOptP : public ::testing::TestWithParam<int> {};

TEST_P(LocalOptP, RotatedQuadraticFromCorners) {
    const Objective f = [](const Vector& x) {
        const double u = 0.8 * x[0] + 0.6 * x[1] - 0.2;
        const double v = -0.6 * x[0] + 0.8 * x[1] + 0.1;
        return u * u + 3.0 * v * v;
    };
    for (double cx : {-0.9, 0.9}) {
        for (double cy : {-0.9, 0.9}) {
            OptResult r;
            switch (GetParam()) {
                case 0: r = nelder_mead(f, kCube2, Vector{cx, cy}); break;
                case 1: r = pattern_search(f, kCube2, Vector{cx, cy}); break;
                default: r = gradient_descent(f, kCube2, Vector{cx, cy}); break;
            }
            EXPECT_LT(r.value, 1e-5);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Methods, LocalOptP, ::testing::Values(0, 1, 2));
