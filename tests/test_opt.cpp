// Optimizer suite tests: local searches and global heuristics.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/anneal.hpp"
#include "opt/genetic.hpp"
#include "opt/gradient.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/pattern.hpp"

using namespace ehdoe::opt;
using ehdoe::num::Vector;

namespace {

// Smooth bowl, minimum at (0.3, -0.4), value 1.
double bowl(const Vector& x) {
    return 1.0 + (x[0] - 0.3) * (x[0] - 0.3) + 2.0 * (x[1] + 0.4) * (x[1] + 0.4);
}

// Rastrigin-lite: multimodal with global minimum at origin.
double multimodal(const Vector& x) {
    double v = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        v += x[i] * x[i] - 0.3 * std::cos(6.0 * M_PI * x[i]) + 0.3;
    }
    return v;
}

const Bounds kCube2 = Bounds::coded_cube(2);

}  // namespace

TEST(Bounds, Basics) {
    EXPECT_EQ(kCube2.dimension(), 2u);
    EXPECT_TRUE(kCube2.contains(Vector{0.5, -0.5}));
    EXPECT_FALSE(kCube2.contains(Vector{1.5, 0.0}));
    EXPECT_DOUBLE_EQ(kCube2.clamp(Vector{2.0, -3.0})[0], 1.0);
    Bounds bad;
    bad.lo = Vector{0.0};
    bad.hi = Vector{0.0};
    EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(NelderMead, FindsBowlMinimum) {
    const OptResult r = nelder_mead(bowl, kCube2, Vector{0.9, 0.9});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.x[1], -0.4, 1e-4);
    EXPECT_NEAR(r.value, 1.0, 1e-7);
    EXPECT_GT(r.evaluations, 0u);
}

TEST(NelderMead, RespectsBoundsWhenMinimumOutside) {
    // Shift the bowl minimum outside the cube: solution lands on the face.
    const Objective f = [](const Vector& x) {
        return (x[0] - 2.0) * (x[0] - 2.0) + x[1] * x[1];
    };
    const OptResult r = nelder_mead(f, kCube2, Vector{0.0, 0.0});
    EXPECT_NEAR(r.x[0], 1.0, 1e-5);
    EXPECT_NEAR(r.x[1], 0.0, 1e-4);
}

TEST(GradientDescent, AnalyticGradient) {
    const GradientFn grad = [](const Vector& x) {
        return Vector{2.0 * (x[0] - 0.3), 4.0 * (x[1] + 0.4)};
    };
    const OptResult r = gradient_descent(bowl, grad, kCube2, Vector{-0.8, 0.8});
    EXPECT_NEAR(r.x[0], 0.3, 1e-5);
    EXPECT_NEAR(r.x[1], -0.4, 1e-5);
}

TEST(GradientDescent, NumericGradient) {
    const OptResult r = gradient_descent(bowl, kCube2, Vector{-0.8, 0.8});
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.value, 1.0, 1e-6);
}

TEST(PatternSearch, FindsBowlMinimum) {
    const OptResult r = pattern_search(bowl, kCube2, Vector{0.9, -0.9});
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.x[0], 0.3, 1e-4);
    EXPECT_NEAR(r.x[1], -0.4, 1e-4);
}

TEST(Genetic, FindsGlobalOnMultimodal) {
    GeneticOptions o;
    o.population = 60;
    o.generations = 80;
    o.seed = 9;
    const OptResult r = genetic_minimize(multimodal, kCube2, o);
    EXPECT_NEAR(r.x[0], 0.0, 0.05);
    EXPECT_NEAR(r.x[1], 0.0, 0.05);
    EXPECT_LT(r.value, 0.05);
}

TEST(Genetic, EvaluationBudgetAccounted) {
    GeneticOptions o;
    o.population = 20;
    o.generations = 10;
    const OptResult r = genetic_minimize(bowl, kCube2, o);
    // Initial pop + (pop - elites) per generation.
    EXPECT_EQ(r.evaluations, 20u + 10u * (20u - o.elites));
}

TEST(Genetic, StallStopsEarly) {
    GeneticOptions o;
    o.generations = 500;
    o.stall_generations = 5;
    o.seed = 4;
    const OptResult r = genetic_minimize(bowl, kCube2, o);
    EXPECT_LT(r.iterations, 500u);
    EXPECT_TRUE(r.converged);
}

TEST(Genetic, Validation) {
    GeneticOptions o;
    o.population = 2;
    EXPECT_THROW(genetic_minimize(bowl, kCube2, o), std::invalid_argument);
    o = GeneticOptions{};
    o.elites = o.population;
    EXPECT_THROW(genetic_minimize(bowl, kCube2, o), std::invalid_argument);
}

TEST(Anneal, FindsGlobalOnMultimodal) {
    AnnealOptions o;
    o.seed = 21;
    o.moves_per_epoch = 60;
    const OptResult r = simulated_annealing(multimodal, kCube2, Vector{0.8, -0.8}, o);
    EXPECT_LT(r.value, 0.1);
}

TEST(Anneal, Validation) {
    AnnealOptions o;
    o.t_final = 2.0;  // above t_initial
    EXPECT_THROW(simulated_annealing(bowl, kCube2, Vector{0.0, 0.0}, o),
                 std::invalid_argument);
    o = AnnealOptions{};
    o.cooling = 1.5;
    EXPECT_THROW(simulated_annealing(bowl, kCube2, Vector{0.0, 0.0}, o),
                 std::invalid_argument);
}

TEST(MultiStart, PicksBestOfStarts) {
    ehdoe::num::Matrix starts{{-0.9, -0.9}, {0.9, 0.9}, {0.0, 0.0}};
    const auto optimizer = [&](const Vector& x0) {
        return nelder_mead(multimodal, kCube2, x0);
    };
    const OptResult r = multi_start(optimizer, starts);
    EXPECT_LT(r.value, 0.05);
    EXPECT_GT(r.evaluations, 0u);
}

TEST(Negated, TurnsMaximizationIntoMinimization) {
    const Objective f = [](const Vector& x) { return -(x[0] - 0.5) * (x[0] - 0.5); };
    const OptResult r = nelder_mead(negated(f), Bounds::coded_cube(1), Vector{0.0});
    EXPECT_NEAR(r.x[0], 0.5, 1e-4);
}

// Property: every local optimizer solves a rotated quadratic from any corner.
class LocalOptP : public ::testing::TestWithParam<int> {};

TEST_P(LocalOptP, RotatedQuadraticFromCorners) {
    const Objective f = [](const Vector& x) {
        const double u = 0.8 * x[0] + 0.6 * x[1] - 0.2;
        const double v = -0.6 * x[0] + 0.8 * x[1] + 0.1;
        return u * u + 3.0 * v * v;
    };
    for (double cx : {-0.9, 0.9}) {
        for (double cy : {-0.9, 0.9}) {
            OptResult r;
            switch (GetParam()) {
                case 0: r = nelder_mead(f, kCube2, Vector{cx, cy}); break;
                case 1: r = pattern_search(f, kCube2, Vector{cx, cy}); break;
                default: r = gradient_descent(f, kCube2, Vector{cx, cy}); break;
            }
            EXPECT_LT(r.value, 1e-5);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Methods, LocalOptP, ::testing::Values(0, 1, 2));
