// Batch evaluation engine tests: determinism under concurrency, memoization
// of repeated points, batching/progress metrics, exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <stdexcept>

#include "core/toolkit.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/factorial.hpp"

using namespace ehdoe::doe;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation transcendental_sim(std::atomic<std::size_t>* calls = nullptr) {
    // Deliberately irrational arithmetic: bitwise comparisons below would
    // catch any reordering of floating-point work across thread counts.
    return [calls](const Vector& nat) {
        if (calls) calls->fetch_add(1);
        const double x = nat[0], y = nat[1];
        return std::map<std::string, double>{
            {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
            {"g", std::cos(x * y) / (1.0 + x * x)},
        };
    };
}

}  // namespace

TEST(BatchRunner, BitwiseIdenticalAcrossThreadCounts) {
    const Design d = full_factorial(2, 7);  // 49 distinct points
    RunnerOptions serial;
    const RunResults base = BatchRunner(transcendental_sim(), serial).run_design(kSpace, d);
    for (std::size_t threads : {2u, 4u, 8u}) {
        RunnerOptions o;
        o.threads = threads;
        o.batch_size = 3;  // force many batches -> real interleaving
        const RunResults r = BatchRunner(transcendental_sim(), o).run_design(kSpace, d);
        ASSERT_EQ(r.responses.rows(), base.responses.rows());
        ASSERT_EQ(r.response_names, base.response_names);
        // Bitwise, not approximate: determinism is the contract.
        EXPECT_TRUE(ehdoe::num::approx_equal(r.responses, base.responses, 0.0))
            << "threads=" << threads;
    }
}

TEST(BatchRunner, CentreReplicatesHitTheCache) {
    std::atomic<std::size_t> calls{0};
    BatchRunner runner(transcendental_sim(&calls));
    const Design ccd = central_composite(
        2, CcdOptions{CcdVariant::FaceCentred, CcdAlpha::Rotatable, 5, true});
    const RunResults r = runner.run_design(kSpace, ccd);
    // 4 factorial + 4 axial + 5 centre points: 9 unique simulations.
    EXPECT_EQ(r.design.runs(), 13u);
    EXPECT_EQ(r.simulations, 9u);
    EXPECT_EQ(r.cache_hits, 4u);
    EXPECT_EQ(calls.load(), 9u);
    EXPECT_EQ(runner.cache_size(), 9u);

    // Re-running the same design is free.
    const RunResults again = runner.run_design(kSpace, ccd);
    EXPECT_EQ(again.simulations, 0u);
    EXPECT_EQ(again.cache_hits, 13u);
    EXPECT_EQ(calls.load(), 9u);
    EXPECT_TRUE(ehdoe::num::approx_equal(again.responses, r.responses, 0.0));

    // Lifetime stats accumulate across calls.
    EXPECT_EQ(runner.stats().points, 26u);
    EXPECT_EQ(runner.stats().simulations, 9u);
    EXPECT_EQ(runner.stats().cache_hits, 17u);
}

TEST(BatchRunner, MemoizationCanBeDisabled) {
    std::atomic<std::size_t> calls{0};
    RunnerOptions o;
    o.memoize = false;
    BatchRunner runner(transcendental_sim(&calls), o);
    Design d;
    d.points = ehdoe::num::Matrix(3, 2);  // three identical centre points
    const RunResults r = runner.run_design(kSpace, d);
    EXPECT_EQ(r.simulations, 3u);
    EXPECT_EQ(r.cache_hits, 0u);
    EXPECT_EQ(calls.load(), 3u);
    EXPECT_EQ(runner.cache_size(), 0u);
}

TEST(BatchRunner, EvaluatePointIsCached) {
    std::atomic<std::size_t> calls{0};
    BatchRunner runner(transcendental_sim(&calls));
    const Vector p{2.5, 1.0};
    const ResponseMap a = runner.evaluate_point(p);
    const ResponseMap b = runner.evaluate_point(p);
    EXPECT_EQ(calls.load(), 1u);
    EXPECT_EQ(a, b);
    runner.clear_cache();
    runner.evaluate_point(p);
    EXPECT_EQ(calls.load(), 2u);
}

TEST(BatchRunner, ExceptionPropagatesFromWorkers) {
    for (std::size_t threads : {1u, 4u}) {
        RunnerOptions o;
        o.threads = threads;
        o.batch_size = 1;
        std::atomic<std::size_t> calls{0};
        const Simulation failing = [&calls](const Vector& nat) -> std::map<std::string, double> {
            calls.fetch_add(1);
            if (nat[0] > 7.0) throw std::invalid_argument("diverged");
            return {{"f", nat[0]}};
        };
        BatchRunner runner(failing, o);
        const Design d = full_factorial(2, 4);  // natural x spans 0..10
        EXPECT_THROW(runner.run_design(kSpace, d), std::invalid_argument) << threads;
        // A failed run commits nothing to the cache.
        EXPECT_EQ(runner.cache_size(), 0u);
    }
}

TEST(BatchRunner, ProgressReportsEveryBatch) {
    RunnerOptions o;
    o.threads = 2;
    o.batch_size = 4;
    std::atomic<std::size_t> batches{0};
    std::atomic<std::size_t> last_done{0};
    o.on_batch = [&](const BatchProgress& p) {
        batches.fetch_add(1);
        last_done.store(p.points_done);
        EXPECT_EQ(p.batch_count, 5u);
        EXPECT_EQ(p.points_total, 18u);
        EXPECT_GE(p.elapsed_seconds, 0.0);
    };
    BatchRunner runner(transcendental_sim(), o);
    const Design d = full_factorial({6, 3});  // 18 distinct points
    runner.run_design(kSpace, d);
    EXPECT_EQ(batches.load(), 5u);  // ceil(18 / 4)
    EXPECT_EQ(last_done.load(), 18u);
    EXPECT_EQ(runner.stats().batches, 5u);
}

TEST(BatchRunner, DesignFlowSharesOneCacheAcrossPhases) {
    // The flow-level promise: CCD centre replicates, validation re-visits
    // and the optimizer confirmation all draw on one memoization cache.
    std::atomic<std::size_t> calls{0};
    const Simulation sim = [&calls](const Vector& nat) {
        calls.fetch_add(1);
        const double x = nat[0], y = nat[1];
        return std::map<std::string, double>{
            {"perf", 10.0 - (x - 6.0) * (x - 6.0) / 4.0 - (y - 2.0) * (y - 2.0)}};
    };
    ehdoe::core::DesignFlow flow(
        DesignSpace({{"x", 0.0, 10.0, false}, {"y", 0.0, 4.0, false}}), sim);
    const auto& res = flow.run_ccd();
    EXPECT_EQ(res.design.runs(), 12u);      // 4 factorial + 4 axial + 4 centre
    EXPECT_EQ(res.simulations, 9u);         // centre simulated once
    EXPECT_EQ(res.cache_hits, 3u);
    EXPECT_EQ(flow.simulator_calls(), 9u);
    EXPECT_EQ(flow.cache_size(), 9u);

    const std::size_t before = calls.load();
    flow.optimize("perf", true, {}, true);  // confirmation simulates <= 1 new point
    EXPECT_LE(calls.load(), before + 1);
    EXPECT_EQ(flow.batch_stats().simulations, calls.load());
}
