// Statistics helpers and deterministic RNG utilities.
#include <gtest/gtest.h>

#include <cmath>

#include "numerics/stats.hpp"

using namespace ehdoe::num;

TEST(Stats, MeanVarianceStddev) {
    const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, DegenerateInputs) {
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(variance({1.0}), 0.0);
    EXPECT_THROW(min_of({}), std::invalid_argument);
    EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, QuantilesAndMedian) {
    const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(median(xs), 2.5);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
    EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
    EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Stats, Correlation) {
    const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
    const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
    EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
    std::vector<double> c{8.0, 6.0, 4.0, 2.0};
    EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
    EXPECT_DOUBLE_EQ(correlation(a, {1.0, 1.0, 1.0, 1.0}), 0.0);  // constant series
}

TEST(Stats, RmsAndErrors) {
    EXPECT_NEAR(rms({3.0, 4.0}), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(rms_error({1.0, 2.0}, {1.0, 2.0}), 0.0);
    EXPECT_NEAR(rms_error({0.0, 0.0}, {3.0, 4.0}), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(max_abs_error({1.0, 5.0}, {2.0, 2.0}), 3.0);
    EXPECT_THROW(rms_error({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Stats, Summarize) {
    const Summary s = summarize({1.0, 3.0, 2.0});
    EXPECT_EQ(s.n, 3u);
    EXPECT_DOUBLE_EQ(s.mean, 2.0);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 3.0);
    EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(Rng, DeterministicFromSeed) {
    Rng a = make_rng(42), b = make_rng(42);
    for (int i = 0; i < 10; ++i) {
        EXPECT_DOUBLE_EQ(uniform(a, 0.0, 1.0), uniform(b, 0.0, 1.0));
    }
    Rng c = make_rng(43);
    EXPECT_NE(uniform(a, 0.0, 1.0), uniform(c, 0.0, 1.0));
}

TEST(Rng, UniformRespectsBounds) {
    Rng rng = make_rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double u = uniform(rng, 2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
        const int n = uniform_int(rng, -2, 2);
        EXPECT_GE(n, -2);
        EXPECT_LE(n, 2);
    }
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
    Rng rng = make_rng(5);
    std::vector<double> xs(20000);
    for (auto& x : xs) x = normal(rng, 1.0, 2.0);
    EXPECT_NEAR(mean(xs), 1.0, 0.05);
    EXPECT_NEAR(stddev(xs), 2.0, 0.05);
}

TEST(Rng, PermutationIsPermutation) {
    Rng rng = make_rng(9);
    const auto p = permutation(rng, 50);
    std::vector<bool> seen(50, false);
    for (std::size_t v : p) {
        ASSERT_LT(v, 50u);
        EXPECT_FALSE(seen[v]);
        seen[v] = true;
    }
}

TEST(Histogram, CountsAndClamping) {
    const Histogram h = histogram({0.1, 0.2, 0.9, -5.0, 5.0}, 2, 0.0, 1.0);
    EXPECT_EQ(h.counts.size(), 2u);
    EXPECT_EQ(h.counts[0], 3u);  // 0.1, 0.2 and clamped -5
    EXPECT_EQ(h.counts[1], 2u);  // 0.9 and clamped 5
    EXPECT_DOUBLE_EQ(h.bin_width(), 0.5);
    EXPECT_DOUBLE_EQ(h.bin_center(0), 0.25);
}

TEST(Histogram, AutoRange) {
    const Histogram h = histogram({1.0, 2.0, 3.0}, 2);
    EXPECT_DOUBLE_EQ(h.lo, 1.0);
    EXPECT_DOUBLE_EQ(h.hi, 3.0);
    std::size_t total = 0;
    for (auto c : h.counts) total += c;
    EXPECT_EQ(total, 3u);
    EXPECT_THROW(histogram({}, 4), std::invalid_argument);
    EXPECT_THROW(histogram({1.0}, 0, 0.0, 1.0), std::invalid_argument);
}
