// CCD / Box-Behnken design tests.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/composite.hpp"

using namespace ehdoe::doe;

TEST(Ccd, RunCountSmallK) {
    CcdOptions o;
    o.center_points = 4;
    o.fractional_core = false;
    const Design d = central_composite(3, o);
    EXPECT_EQ(d.runs(), 8u + 6u + 4u);
}

TEST(Ccd, FractionalCoreHalvesCubeForK6) {
    CcdOptions o;
    o.center_points = 4;
    const Design d = central_composite(6, o);
    EXPECT_EQ(d.runs(), 32u + 12u + 4u);  // 2^(6-1) + 2k + nc
}

TEST(Ccd, RotatableAlpha) {
    CcdOptions o;
    o.fractional_core = false;
    EXPECT_NEAR(ccd_alpha_value(2, o), std::sqrt(2.0), 1e-12);       // 4^(1/4)
    EXPECT_NEAR(ccd_alpha_value(3, o), std::pow(8.0, 0.25), 1e-12);
}

TEST(Ccd, FaceCentredStaysInCube) {
    CcdOptions o;
    o.variant = CcdVariant::FaceCentred;
    const Design d = central_composite(4, o);
    for (std::size_t i = 0; i < d.runs(); ++i) {
        for (std::size_t j = 0; j < 4; ++j) {
            EXPECT_LE(std::fabs(d.points(i, j)), 1.0 + 1e-12);
        }
    }
}

TEST(Ccd, InscribedStaysInCube) {
    CcdOptions o;
    o.variant = CcdVariant::Inscribed;
    const Design d = central_composite(3, o);
    for (std::size_t i = 0; i < d.runs(); ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            EXPECT_LE(std::fabs(d.points(i, j)), 1.0 + 1e-12);
        }
    }
}

TEST(Ccd, CircumscribedAxialsAtAlpha) {
    CcdOptions o;
    o.variant = CcdVariant::Circumscribed;
    o.fractional_core = false;
    o.center_points = 0;
    const Design d = central_composite(2, o);
    const double alpha = ccd_alpha_value(2, o);
    // Last 2k rows are axial points.
    double max_abs = 0.0;
    for (std::size_t i = 4; i < 8; ++i) {
        for (std::size_t j = 0; j < 2; ++j) {
            max_abs = std::max(max_abs, std::fabs(d.points(i, j)));
        }
    }
    EXPECT_NEAR(max_abs, alpha, 1e-12);
}

TEST(Ccd, OrthogonalAlphaFormula) {
    CcdOptions o;
    o.alpha = CcdAlpha::Orthogonal;
    o.fractional_core = false;
    o.center_points = 4;
    // k=2: nf=4, N=12, Q=(sqrt(12)-2)^2, alpha=(Q*4/4)^(1/4).
    const double q = std::sqrt(12.0) - 2.0;
    EXPECT_NEAR(ccd_alpha_value(2, o), std::sqrt(q), 1e-12);
}

TEST(Ccd, CenterPointsAreZeroRows) {
    CcdOptions o;
    o.center_points = 3;
    o.fractional_core = false;
    const Design d = central_composite(2, o);
    for (std::size_t i = d.runs() - 3; i < d.runs(); ++i) {
        EXPECT_DOUBLE_EQ(d.points(i, 0), 0.0);
        EXPECT_DOUBLE_EQ(d.points(i, 1), 0.0);
    }
}

TEST(BoxBehnken, StructureK3) {
    const Design d = box_behnken(3, 3);
    EXPECT_EQ(d.runs(), 12u + 3u);
    // Every non-centre run has exactly one zero coordinate (k=3).
    for (std::size_t i = 0; i < 12; ++i) {
        int zeros = 0;
        for (std::size_t j = 0; j < 3; ++j) {
            if (d.points(i, j) == 0.0) ++zeros;
        }
        EXPECT_EQ(zeros, 1);
    }
}

TEST(BoxBehnken, NeverVisitsCorners) {
    const Design d = box_behnken(4, 1);
    for (std::size_t i = 0; i < d.runs(); ++i) {
        double l1 = 0.0;
        for (std::size_t j = 0; j < 4; ++j) l1 += std::fabs(d.points(i, j));
        EXPECT_LE(l1, 2.0 + 1e-12);  // at most two active factors
    }
    EXPECT_THROW(box_behnken(2), std::invalid_argument);
}

// Property: CCD supports a quadratic fit for every k (enough distinct runs).
#include "numerics/polynomial.hpp"
#include "numerics/linalg.hpp"

class CcdFitP : public ::testing::TestWithParam<int> {};

TEST_P(CcdFitP, SupportsQuadraticModel) {
    const auto k = static_cast<std::size_t>(GetParam());
    const Design d = central_composite(k, CcdOptions{});
    const auto terms = ehdoe::num::quadratic_basis(k);
    ASSERT_GE(d.runs(), terms.size());
    const auto x = ehdoe::num::model_matrix(terms, d.points);
    EXPECT_EQ(ehdoe::num::QrFactor(x).rank(), terms.size());
}

INSTANTIATE_TEST_SUITE_P(Ks, CcdFitP, ::testing::Values(2, 3, 4, 5, 6, 7, 8));
