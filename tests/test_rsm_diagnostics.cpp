// Regression diagnostics tests.
#include <gtest/gtest.h>

#include <cmath>

#include "doe/lhs.hpp"
#include "numerics/stats.hpp"
#include "rsm/diagnostics.hpp"

using namespace ehdoe::rsm;
using ehdoe::num::Vector;

TEST(Distributions, IncompleteBetaKnownValues) {
    // I_x(1,1) = x.
    EXPECT_NEAR(incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-10);
    // I_x(2,2) = x^2 (3 - 2x).
    EXPECT_NEAR(incomplete_beta(2.0, 2.0, 0.4), 0.16 * (3.0 - 0.8), 1e-10);
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(incomplete_beta(2.0, 3.0, 1.0), 1.0);
    EXPECT_THROW(incomplete_beta(0.0, 1.0, 0.5), std::invalid_argument);
}

TEST(Distributions, StudentTPValues) {
    // dof=1 (Cauchy): p(t=1) = 0.5.
    EXPECT_NEAR(student_t_p_value(1.0, 1.0), 0.5, 1e-9);
    // Large dof ~ normal: p(1.96) ~ 0.05.
    EXPECT_NEAR(student_t_p_value(1.96, 1000.0), 0.05, 0.002);
    EXPECT_NEAR(student_t_p_value(0.0, 10.0), 1.0, 1e-12);
    EXPECT_GT(student_t_p_value(1.0, 5.0), student_t_p_value(3.0, 5.0));
}

TEST(Distributions, FPValues) {
    // F(1, d2) = T(d2)^2: p_F(f) == p_T(sqrt(f)).
    EXPECT_NEAR(f_distribution_p_value(4.0, 1.0, 20.0), student_t_p_value(2.0, 20.0), 1e-9);
    EXPECT_DOUBLE_EQ(f_distribution_p_value(0.0, 3.0, 10.0), 1.0);
    EXPECT_LT(f_distribution_p_value(10.0, 3.0, 30.0), 0.01);
}

namespace {
FitResult noisy_fit(double noise, std::uint64_t seed = 17) {
    ehdoe::num::Rng rng = ehdoe::num::make_rng(seed);
    const auto d = ehdoe::doe::latin_hypercube(80, 2, 31);
    std::vector<double> y(d.runs());
    for (std::size_t i = 0; i < d.runs(); ++i) {
        const Vector x = d.points.row(i);
        // Strong x0 effect, no x1 effect.
        y[i] = 1.0 + 5.0 * x[0] + ehdoe::num::normal(rng, 0.0, noise);
    }
    return fit_ols(ModelSpec(2, ModelOrder::Linear), d.points, y);
}
}  // namespace

TEST(Diagnose, SignificantVsInsignificantTerms) {
    const Diagnostics diag = diagnose(noisy_fit(0.5));
    // Terms: 1, x0, x1.
    EXPECT_LT(diag.coefficients[1].p_value, 1e-6);   // real effect
    EXPECT_GT(diag.coefficients[2].p_value, 0.01);   // pure noise
    EXPECT_NEAR(diag.coefficients[1].estimate, 5.0, 0.5);
    EXPECT_GT(diag.coefficients[1].t_value, 10.0);
}

TEST(Diagnose, AnovaDetectsRegression) {
    const Diagnostics diag = diagnose(noisy_fit(0.5));
    EXPECT_LT(diag.anova.p_value, 1e-10);
    EXPECT_EQ(diag.anova.df_regression, 2u);
    EXPECT_EQ(diag.anova.df_error, 77u);
    EXPECT_NEAR(diag.anova.ss_total, diag.anova.ss_regression + diag.anova.ss_error, 1e-9);
}

TEST(Diagnose, PressExceedsSse) {
    const FitResult f = noisy_fit(0.5);
    const Diagnostics diag = diagnose(f);
    EXPECT_GT(diag.press, f.sse);          // LOO error >= training error
    EXPECT_LT(diag.press, 3.0 * f.sse);    // but not catastrophically so
    EXPECT_LT(diag.r_squared_pred, f.r_squared());
}

TEST(Diagnose, LeverageSumsToP) {
    const FitResult f = noisy_fit(1.0);
    const Diagnostics diag = diagnose(f);
    double sum = 0.0;
    for (double h : diag.leverage) {
        EXPECT_GE(h, -1e-12);
        EXPECT_LE(h, 1.0 + 1e-12);
        sum += h;
    }
    EXPECT_NEAR(sum, static_cast<double>(f.p), 1e-8);
}

TEST(Diagnose, VifNearOneForOrthogonalDesign) {
    // LHS columns are near-orthogonal: VIF close to 1.
    const Diagnostics diag = diagnose(noisy_fit(0.5));
    EXPECT_LT(diag.vif[1], 1.3);
    EXPECT_LT(diag.vif[2], 1.3);
    EXPECT_DOUBLE_EQ(diag.vif[0], 1.0);  // intercept skipped
}

TEST(Diagnose, DetectsCollinearity) {
    // x1 duplicated as an extra term via a design where x1 == x0.
    ehdoe::num::Matrix pts(20, 2);
    ehdoe::num::Rng rng = ehdoe::num::make_rng(3);
    for (std::size_t i = 0; i < 20; ++i) {
        const double v = ehdoe::num::uniform(rng, -1.0, 1.0);
        pts(i, 0) = v;
        pts(i, 1) = v;  // perfectly collinear
    }
    std::vector<double> y(20);
    for (std::size_t i = 0; i < 20; ++i) y[i] = pts(i, 0);
    EXPECT_THROW(fit_ols(ModelSpec(2, ModelOrder::Linear), pts, y), std::runtime_error);
}

TEST(Diagnose, RequiresResidualDof) {
    // n == p: no dof for sigma^2.
    ehdoe::num::Matrix pts{{-1.0, -1.0}, {1.0, -1.0}, {-1.0, 1.0}};
    std::vector<double> y{1.0, 2.0, 3.0};
    const FitResult f = fit_ols(ModelSpec(2, ModelOrder::Linear), pts, y);
    EXPECT_THROW(diagnose(f), std::invalid_argument);
}
