// Firmware duty-cycle policy tests.
#include <gtest/gtest.h>

#include "node/firmware.hpp"

using namespace ehdoe::node;

TEST(Firmware, RunsWhenHealthy) {
    Firmware fw(FirmwareParams{}, NodePowerParams{});
    EXPECT_EQ(fw.decide(3.0, true), TaskDecision::Run);
    EXPECT_FALSE(fw.backed_off());
}

TEST(Firmware, SkipsWhenDead) {
    Firmware fw(FirmwareParams{}, NodePowerParams{});
    EXPECT_EQ(fw.decide(3.0, false), TaskDecision::SkipOff);
}

TEST(Firmware, BacksOffWhenLowAndRecovers) {
    FirmwareParams p;
    p.task_period = 4.0;
    p.low_voltage_threshold = 2.2;
    p.recover_voltage = 2.5;
    p.backoff_factor = 3.0;
    Firmware fw(p, NodePowerParams{});
    EXPECT_EQ(fw.decide(2.0, true), TaskDecision::SkipLow);
    EXPECT_TRUE(fw.backed_off());
    EXPECT_DOUBLE_EQ(fw.current_period(), 12.0);
    // Still low at 2.3 (below recover): stays backed off.
    EXPECT_EQ(fw.decide(2.3, true), TaskDecision::Run);
    EXPECT_TRUE(fw.backed_off());
    // Recovers at 2.6.
    EXPECT_EQ(fw.decide(2.6, true), TaskDecision::Run);
    EXPECT_FALSE(fw.backed_off());
    EXPECT_DOUBLE_EQ(fw.current_period(), 4.0);
}

TEST(Firmware, ResetRestoresNominal) {
    FirmwareParams p;
    Firmware fw(p, NodePowerParams{});
    fw.decide(0.5, true);
    EXPECT_TRUE(fw.backed_off());
    fw.reset();
    EXPECT_FALSE(fw.backed_off());
    EXPECT_DOUBLE_EQ(fw.current_period(), p.task_period);
}

TEST(Firmware, DutyCycleAndPeriodRoundTrip) {
    NodePowerParams power;
    FirmwareParams p;
    p.payload_bytes = 64;
    for (double duty : {0.001, 0.005, 0.02}) {
        const double period = FirmwareParams::period_for_duty(power, 64, duty);
        p.task_period = period;
        EXPECT_NEAR(p.duty_cycle(power), duty, 1e-12);
    }
    EXPECT_THROW(FirmwareParams::period_for_duty(power, 64, 0.0), std::invalid_argument);
    EXPECT_THROW(FirmwareParams::period_for_duty(power, 64, 1.5), std::invalid_argument);
}

TEST(Firmware, TaskEnergyForwarded) {
    NodePowerParams power;
    FirmwareParams p;
    p.payload_bytes = 96;
    Firmware fw(p, power);
    EXPECT_DOUBLE_EQ(fw.task_energy(), power.task_energy(96));
    EXPECT_DOUBLE_EQ(fw.task_duration(), power.task_duration(96));
}

TEST(Firmware, Validation) {
    FirmwareParams p;
    p.task_period = 0.0;
    EXPECT_THROW(Firmware(p, NodePowerParams{}), std::invalid_argument);
    p = FirmwareParams{};
    p.payload_bytes = 0;
    EXPECT_THROW(Firmware(p, NodePowerParams{}), std::invalid_argument);
    p = FirmwareParams{};
    p.backoff_factor = 0.5;
    EXPECT_THROW(Firmware(p, NodePowerParams{}), std::invalid_argument);
    p = FirmwareParams{};
    p.recover_voltage = p.low_voltage_threshold - 0.1;
    EXPECT_THROW(Firmware(p, NodePowerParams{}), std::invalid_argument);
}
