// Service-level tests for the farm-wide result store (src/store/): the
// wire round trip, the headline acceptance property (a second, independent
// farm run over a warm store performs zero simulations and is bitwise
// identical), racing put-batch writers converging to the union, corrupt
// segments degrading to re-simulation (never failing a run), a store dying
// mid-run falling through to the inner backend, and handshake rejection of
// alien peers and stale protocol versions.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/eval_backend.hpp"
#include "core/scenario.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/factorial.hpp"
#include "net_test_utils.hpp"
#include "store/store_backend.hpp"
#include "store/store_client.hpp"
#include "store/store_server.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using ehdoe::num::Vector;

namespace {

namespace fs = std::filesystem;

/// A scratch store directory that dies with the test.
class TempDir {
public:
    explicit TempDir(const std::string& stem) {
        static int seq = 0;
        path_ = (fs::temp_directory_path() /
                 (stem + "-" + std::to_string(::getpid()) + "-" + std::to_string(seq++)))
                    .string();
        fs::create_directories(path_);
    }
    ~TempDir() {
        std::error_code ec;
        fs::remove_all(path_, ec);
    }
    const std::string& path() const { return path_; }

private:
    std::string path_;
};

std::unique_ptr<store::StoreServer> start_store(const TempDir& dir) {
    store::StoreServerOptions o;
    o.dir = dir.path();
    o.verbose = false;
    auto server = std::make_unique<store::StoreServer>(std::move(o));
    server->start();
    return server;
}

std::string store_endpoint_of(const store::StoreServer& server) {
    return "127.0.0.1:" + std::to_string(server.port());
}

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

Simulation transcendental_sim() {
    return [](const Vector& nat) {
        const double x = nat[0], y = nat[1];
        return std::map<std::string, double>{
            {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
            {"g", std::cos(x * y) / (1.0 + x * x)},
        };
    };
}

/// A loopback port that was just bound and released — connecting to it
/// refuses (nothing listens there between the close and the connect).
std::uint16_t dead_port() {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    ::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr);
    socklen_t len = sizeof addr;
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ::close(fd);
    return ntohs(addr.sin_port);
}

/// The single live segment file of a fresh store directory.
fs::path only_segment(const std::string& dir) {
    fs::path found;
    for (const auto& entry : fs::directory_iterator(dir)) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("segment-", 0) == 0 && name.size() > 4 &&
            name.compare(name.size() - 4, 4, ".log") == 0) {
            EXPECT_TRUE(found.empty()) << "expected exactly one segment";
            found = entry.path();
        }
    }
    EXPECT_FALSE(found.empty());
    return found;
}

}  // namespace

TEST(StoreService, ClientRoundTripAndStats) {
    TempDir dir("ehdoe-storesvc-roundtrip");
    auto server = start_store(dir);
    store::StoreClient client("127.0.0.1", server->port());

    // Cold store: every lookup is a miss.
    auto lookups = client.get({"k1", "k2"});
    ASSERT_EQ(lookups.size(), 2u);
    EXPECT_FALSE(lookups[0].found);
    EXPECT_FALSE(lookups[1].found);

    std::vector<net::StoreEntry> entries(2);
    entries[0].key = "k1";
    entries[0].responses = {{"E_harv", 1.0 / 3.0}, {"packets", 42.0}};
    entries[1].key = "k2";
    entries[1].responses = {{"E_harv", 0x1.fedcba987p-3}};
    EXPECT_EQ(client.put(entries), 2u);
    EXPECT_EQ(client.put(entries), 0u) << "bitwise duplicates must not re-append";

    lookups = client.get({"k1", "k3", "k2"});
    ASSERT_EQ(lookups.size(), 3u);
    EXPECT_TRUE(lookups[0].found);
    EXPECT_FALSE(lookups[1].found);
    EXPECT_TRUE(lookups[2].found);
    EXPECT_EQ(lookups[0].responses, entries[0].responses);
    EXPECT_EQ(lookups[2].responses, entries[1].responses);

    const net::StoreStats stats = client.stats();
    EXPECT_EQ(stats.keys, 2u);
    EXPECT_EQ(stats.segments, 1u);
    EXPECT_EQ(stats.quarantined_segments, 0u);
    EXPECT_EQ(stats.records_appended, 2u);
    EXPECT_EQ(stats.puts_received, 4u);
    EXPECT_EQ(stats.gets_served, 5u);
    EXPECT_EQ(stats.get_hits, 2u);
    EXPECT_GE(stats.connections_accepted, 1u);
    server->stop();
}

// ---------------------------------------------------------------------------
// The headline acceptance property: two *independent* farm runs — separate
// processes, separate runners, nothing shared but the store endpoint — and
// the second one simulates nothing, bitwise identical to a storeless run.
// ---------------------------------------------------------------------------
TEST(StoreService, SecondFarmProcessOverAWarmStoreSimulatesNothing) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());

    // Storeless reference (computed before the fork so both processes can
    // compare against the identical baseline).
    RunnerOptions plain;
    plain.threads = 2;
    const RunResults base =
        BatchRunner(sc.make_simulation(), plain).run_design(space, ccd);
    ASSERT_EQ(base.simulations, 45u);

    TempDir dir("ehdoe-storesvc-twofarms");
    auto server = start_store(dir);

    RunnerOptions o;
    o.threads = 2;
    o.cache_fingerprint = sc.fingerprint();
    o.store_endpoint = store_endpoint_of(*server);

    // Farm run 1 in a child process: cold store, full simulation bill, and
    // every result published back.
    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        const RunResults r =
            BatchRunner(sc.make_simulation(), o).run_design(space, ccd);
        const bool ok = r.simulations == 45u &&
                        num::approx_equal(r.responses, base.responses, 0.0);
        ::_exit(ok ? 0 : 1);
    }
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0) << "the cold farm run must simulate and match";
    EXPECT_EQ(server->log().size(), 45u) << "every distinct point must be published";

    // Farm run 2 in this process: a different farm, warm store — zero
    // simulations, bitwise-identical responses.
    const RunResults warm = BatchRunner(sc.make_simulation(), o).run_design(space, ccd);
    EXPECT_EQ(warm.simulations, 0u)
        << "a second farm run over a warm store must not simulate";
    EXPECT_EQ(warm.cache_hits, ccd.runs());
    EXPECT_TRUE(num::approx_equal(warm.responses, base.responses, 0.0))
        << "store hits must be bitwise identical to local simulation";
    server->stop();
}

TEST(StoreService, RacingPutWritersConvergeToTheUnion) {
    TempDir dir("ehdoe-storesvc-racing");
    auto server = start_store(dir);
    constexpr int kWriters = 2;
    constexpr int kKeysEach = 40;

    // Each child is an independent "farm client" hammering put-batches:
    // private keys plus a shared set both race to publish with identical
    // bits (the replayed-batch case).
    std::vector<pid_t> children;
    for (int c = 0; c < kWriters; ++c) {
        const pid_t pid = fork();
        ASSERT_GE(pid, 0);
        if (pid == 0) {
            bool ok = true;
            try {
                store::StoreClient client("127.0.0.1", server->port());
                for (int i = 0; i < kKeysEach; ++i) {
                    net::StoreEntry mine;
                    mine.key = "w" + std::to_string(c) + "-k" + std::to_string(i);
                    mine.responses = {{"v", 1000.0 * c + i}};
                    net::StoreEntry shared;
                    shared.key = "shared-k" + std::to_string(i);
                    shared.responses = {{"v", 0.5 * i}};
                    client.put({mine, shared});
                }
            } catch (const std::exception&) {
                ok = false;
            }
            ::_exit(ok ? 0 : 1);
        }
        children.push_back(pid);
    }
    for (const pid_t pid : children) {
        int status = 0;
        ASSERT_EQ(::waitpid(pid, &status, 0), pid);
        ASSERT_TRUE(WIFEXITED(status));
        ASSERT_EQ(WEXITSTATUS(status), 0);
    }

    // The union, exactly: every writer's private keys, the shared set once.
    EXPECT_EQ(server->log().size(),
              static_cast<std::size_t>(kWriters * kKeysEach + kKeysEach));
    store::StoreClient reader("127.0.0.1", server->port());
    for (int c = 0; c < kWriters; ++c) {
        for (int i = 0; i < kKeysEach; ++i) {
            const auto got =
                reader.get({"w" + std::to_string(c) + "-k" + std::to_string(i)});
            ASSERT_TRUE(got[0].found) << "writer " << c << " key " << i << " was dropped";
            EXPECT_EQ(got[0].responses.at("v"), 1000.0 * c + i);
        }
    }
    for (int i = 0; i < kKeysEach; ++i) {
        const auto got = reader.get({"shared-k" + std::to_string(i)});
        ASSERT_TRUE(got[0].found);
        EXPECT_EQ(got[0].responses.at("v"), 0.5 * i);
    }
    server->stop();
}

TEST(StoreService, CorruptSegmentIsQuarantinedAndRunsFallThroughToSimulation) {
    TempDir dir("ehdoe-storesvc-corrupt");
    const Design grid = full_factorial(2, 3);  // 9 distinct points

    RunnerOptions o;
    o.cache_fingerprint = "sim-corrupt";
    {
        auto server = start_store(dir);
        o.store_endpoint = store_endpoint_of(*server);
        const RunResults cold =
            BatchRunner(transcendental_sim(), o).run_design(kSpace, grid);
        EXPECT_EQ(cold.simulations, 9u);
        EXPECT_EQ(server->log().size(), 9u);
        server->stop();
    }

    // Damage the store on disk: flip a byte in the last record's body.
    {
        const fs::path segment = only_segment(dir.path());
        std::fstream io(segment, std::ios::binary | std::ios::in | std::ios::out);
        io.seekg(-3, std::ios::end);
        const auto pos = io.tellg();
        char byte = 0;
        io.read(&byte, 1);
        byte = static_cast<char>(byte ^ 0x5A);
        io.seekp(pos);
        io.write(&byte, 1);
    }

    // A fresh daemon on the damaged directory quarantines the segment and
    // keeps serving; the next run re-simulates only what was lost — the
    // run completes, bitwise identical, and repairs the store by re-putting.
    auto server = start_store(dir);
    EXPECT_EQ(server->log().counters().quarantined_segments, 1u);
    const std::size_t surviving = server->log().size();
    EXPECT_LT(surviving, 9u);

    o.store_endpoint = store_endpoint_of(*server);
    const RunResults reference =
        BatchRunner(transcendental_sim(), RunnerOptions{}).run_design(kSpace, grid);
    const RunResults after =
        BatchRunner(transcendental_sim(), o).run_design(kSpace, grid);
    EXPECT_EQ(after.simulations, 9u - surviving)
        << "exactly the quarantined records must be re-simulated";
    EXPECT_GT(after.simulations, 0u);
    EXPECT_TRUE(num::approx_equal(after.responses, reference.responses, 0.0));
    EXPECT_EQ(server->log().size(), 9u) << "the re-simulated points must be re-published";
    server->stop();
}

TEST(StoreService, StoreDyingMidRunFallsThroughToTheInnerBackend) {
    TempDir dir("ehdoe-storesvc-dying");
    auto server = start_store(dir);

    core::BackendOptions bo;
    auto inner = core::make_backend(transcendental_sim(), core::BackendKind::InProcess, bo);
    store::StoreBackendOptions so;
    so.host = "127.0.0.1";
    so.port = server->port();
    so.fingerprint = "sim-dying";
    so.redial_seconds = 3600.0;  // no re-dial inside this test
    store::StoreBackend backend(inner, so);

    std::vector<Vector> first = {Vector{1.0, 2.0}, Vector{3.0, 4.0}};
    backend.evaluate(first);
    EXPECT_EQ(backend.simulations(), 2u);
    backend.evaluate(first);  // warm: served by the store, not the sim
    EXPECT_EQ(backend.simulations(), 2u);
    EXPECT_EQ(backend.store_hits(), 2u);
    EXPECT_TRUE(backend.connected());

    // Kill the store mid-run: the next batch must degrade to simulation,
    // not throw.
    server->stop();
    server.reset();
    std::vector<Vector> second = {Vector{5.0, 6.0}};
    const auto got = backend.evaluate(second);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(backend.simulations(), 3u) << "the miss must fall through to the inner backend";
    EXPECT_FALSE(backend.connected());

    // And it stays dead quietly: further batches keep working.
    std::vector<Vector> third = {Vector{7.0, 8.0}};
    backend.evaluate(third);
    EXPECT_EQ(backend.simulations(), 4u);
}

TEST(StoreService, UnreachableStoreIsALoudConstructionError) {
    const std::uint16_t port = dead_port();
    core::BackendOptions bo;
    auto inner = core::make_backend(transcendental_sim(), core::BackendKind::InProcess, bo);
    store::StoreBackendOptions so;
    so.host = "127.0.0.1";
    so.port = port;
    so.fingerprint = "sim-unreachable";
    so.timeout_seconds = 2;
    EXPECT_THROW(store::StoreBackend(inner, so), std::runtime_error);

    // The same misconfiguration through RunnerOptions: the runner must
    // refuse to start, not silently run storeless.
    RunnerOptions o;
    o.cache_fingerprint = "sim-unreachable";
    o.store_endpoint = "127.0.0.1:" + std::to_string(port);
    EXPECT_THROW(BatchRunner(transcendental_sim(), o), std::runtime_error);
}

TEST(StoreService, SnapshotAndStoreTiersEachServeAWarmRunAlone) {
    TempDir dir("ehdoe-storesvc-tiering");
    auto server = start_store(dir);
    net_test::TempFile cache("ehdoe-storesvc-tier");
    const Design grid = full_factorial(2, 3);

    RunnerOptions both;
    both.cache_fingerprint = "sim-tier";
    both.cache_file = cache.path();
    both.store_endpoint = store_endpoint_of(*server);
    {
        // Cold run populates both tiers (the snapshot on destruction).
        const RunResults cold =
            BatchRunner(transcendental_sim(), both).run_design(kSpace, grid);
        EXPECT_EQ(cold.simulations, 9u);
    }
    EXPECT_EQ(server->log().size(), 9u);

    {
        // Snapshot tier alone (no store endpoint): warm.
        RunnerOptions snapshot_only;
        snapshot_only.cache_fingerprint = "sim-tier";
        snapshot_only.cache_file = cache.path();
        const RunResults r =
            BatchRunner(transcendental_sim(), snapshot_only).run_design(kSpace, grid);
        EXPECT_EQ(r.simulations, 0u);
    }
    {
        // Store tier alone (no snapshot file): warm.
        RunnerOptions store_only;
        store_only.cache_fingerprint = "sim-tier";
        store_only.store_endpoint = store_endpoint_of(*server);
        const RunResults r =
            BatchRunner(transcendental_sim(), store_only).run_design(kSpace, grid);
        EXPECT_EQ(r.simulations, 0u);
    }
    server->stop();
}

// ---------------------------------------------------------------------------
// Handshake hardening: the store daemon must reject alien peers and stale
// protocol versions without disturbing the log or other connections.
// ---------------------------------------------------------------------------
TEST(StoreService, EvalMagicIsRejectedByTheStoreServer) {
    TempDir dir("ehdoe-storesvc-alien");
    auto server = start_store(dir);
    const int fd = net_test::raw_connect(server->port());
    const char eval_magic[6] = {'E', 'H', 'D', 'O', 'E', 'N'};
    ASSERT_EQ(::send(fd, eval_magic, sizeof eval_magic, MSG_NOSIGNAL),
              static_cast<ssize_t>(sizeof eval_magic));
    char buf[16];
    EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0)
        << "an eval peer must be dropped by the store handshake";
    ::close(fd);
    EXPECT_GE(server->handshakes_rejected(), 1u);

    // The daemon is unharmed: a real store client still round-trips.
    store::StoreClient client("127.0.0.1", server->port());
    EXPECT_FALSE(client.get({"k"})[0].found);
    server->stop();
}

TEST(StoreService, PreStoreProtocolVersionIsRefusedWithAClearMessage) {
    TempDir dir("ehdoe-storesvc-version");
    auto server = start_store(dir);
    const int fd = net_test::raw_connect(server->port());
    // v5 predates the store connection kind; the hello must be refused.
    ASSERT_TRUE(net::write_store_hello(fd, net::kStoreMinProtocolVersion - 1));
    std::uint64_t status = 0;
    std::string message;
    ASSERT_TRUE(net::read_welcome(fd, status, message, net::kMinProtocolVersion));
    EXPECT_NE(status, net::kStatusOk);
    EXPECT_NE(message.find("store server speaks"), std::string::npos) << message;
    ::close(fd);
    EXPECT_GE(server->handshakes_rejected(), 1u);
    server->stop();
}
