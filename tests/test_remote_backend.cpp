// Distributed evaluation service tests: RemoteBackend sharding over
// loopback EvalServer instances — bitwise equivalence with in-process
// evaluation (1 and 2 shards), mid-batch shard death with re-dispatch,
// handshake rejection (protocol version / fingerprint / replicates),
// remote simulation errors in design order, and the persistent cache as
// the shared result store above the remote layer.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/persistent_cache.hpp"
#include "core/scenario.hpp"
#include "core/toolkit.hpp"
#include "doe/batch_runner.hpp"
#include "doe/composite.hpp"
#include "doe/factorial.hpp"
#include "net/eval_server.hpp"
#include "net/remote_backend.hpp"
#include "net/wire.hpp"
#include "net_test_utils.hpp"

using namespace ehdoe;
using namespace ehdoe::doe;
using namespace ehdoe::net_test;
using ehdoe::num::Vector;

namespace {

const DesignSpace kSpace({{"x", 0.0, 10.0, false}, {"y", -5.0, 5.0, false}});

/// Deliberately irrational arithmetic: bitwise comparisons below catch any
/// reordering of floating-point work across shards.
std::map<std::string, double> transcendental(const Vector& nat) {
    const double x = nat[0], y = nat[1];
    return {
        {"f", std::sin(x) * std::exp(0.3 * y) + std::sqrt(x + 1.0)},
        {"g", std::cos(x * y) / (1.0 + x * x)},
    };
}

Simulation transcendental_sim() {
    return [](const Vector& nat) { return transcendental(nat); };
}

/// Same values, but slow enough that a batch is still in flight when a
/// test kills a shard.
Simulation slow_sim() {
    return [](const Vector& nat) {
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
        return transcendental(nat);
    };
}

}  // namespace

// ---------------------------------------------------------------------------
// Equivalence: the S1 CCD through 1 and 2 loopback shards is bitwise
// identical to InProcessBackend (the acceptance criterion).
// ---------------------------------------------------------------------------
TEST(RemoteBackend, S1CcdBitwiseIdenticalAcrossShardCounts) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());
    const std::string fp = sc.fingerprint();

    const RunResults base =
        BatchRunner(sc.make_simulation(), RunnerOptions{}).run_design(space, ccd);
    EXPECT_EQ(base.simulations, 45u);

    auto s1 = start_server(sc.make_simulation(), fp);
    auto s2 = start_server(sc.make_simulation(), fp);
    {
        BatchRunner remote(sc.make_simulation(), remote_options({endpoint_of(*s1)}, fp));
        EXPECT_EQ(remote.backend().name(), "remote(1 shards)");
        const RunResults r = remote.run_design(space, ccd);
        EXPECT_EQ(r.response_names, base.response_names);
        EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
        EXPECT_EQ(r.simulations, 45u);
        EXPECT_EQ(r.cache_hits, 3u);  // the centre replicates, memoized client-side
    }
    EXPECT_EQ(s1->points_served(), 45u);
    {
        BatchRunner remote(sc.make_simulation(),
                           remote_options({endpoint_of(*s1), endpoint_of(*s2)}, fp));
        const RunResults r = remote.run_design(space, ccd);
        EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
        EXPECT_EQ(r.simulations, 45u);
        EXPECT_EQ(remote.threads(), 2u);  // concurrency = live shards
    }
    // The second run sharded across both servers.
    EXPECT_EQ(s1->points_served() + s2->points_served(), 90u);
    EXPECT_GT(s2->points_served(), 0u);
}

// ---------------------------------------------------------------------------
// Failover: killing one shard mid-batch re-dispatches its points and the
// batch completes with identical results.
// ---------------------------------------------------------------------------
TEST(RemoteBackend, ShardDeathMidBatchStillCompletesIdentically) {
    const std::string fp = "sim-slow";
    auto s1 = start_server(slow_sim(), fp);
    auto s2 = start_server(slow_sim(), fp);

    const Design d = full_factorial(2, 9);  // 81 distinct points
    const RunResults base = BatchRunner(transcendental_sim()).run_design(kSpace, d);

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1)), net::parse_endpoint(endpoint_of(*s2))};
    ro.fingerprint = fp;
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    BatchRunner runner(backend);

    // Shoot the second shard once it has actually served work.
    std::thread killer([&] {
        while (s2->points_served() < 3) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        s2->stop();
    });
    const RunResults r = runner.run_design(kSpace, d);
    killer.join();

    EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
    // The dead shard stays dead: its server is gone, so re-dials keep failing.
    EXPECT_EQ(backend->live_endpoints(), 1u);
    EXPECT_EQ(r.simulations, 81u);  // every point resolved exactly once

    // The surviving shard keeps serving subsequent batches alone.
    num::Matrix one(1, 2);
    const RunResults again = runner.run_points(kSpace, one);
    EXPECT_EQ(again.cache_hits + again.simulations, 1u);
}

TEST(RemoteBackend, AllShardsDeadSurfacesClearErrorsInDesignOrder) {
    const std::string fp = "sim-slow";
    auto s1 = start_server(slow_sim(), fp);

    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*s1))};
    ro.fingerprint = fp;
    auto backend = std::make_shared<net::RemoteBackend>(ro);
    RunnerOptions no_memo;
    no_memo.memoize = false;
    BatchRunner runner(backend, no_memo);

    std::thread killer([&] {
        while (s1->points_served() < 2) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        s1->stop();
    });
    try {
        runner.run_design(kSpace, full_factorial(2, 9));
        killer.join();
        FAIL() << "expected a no-live-endpoints error";
    } catch (const std::runtime_error& e) {
        killer.join();
        EXPECT_NE(std::string(e.what()).find("no live endpoints remain"), std::string::npos)
            << e.what();
    }
    EXPECT_EQ(backend->live_endpoints(), 0u);
    EXPECT_THROW(runner.run_points(kSpace, num::Matrix(1, 2)), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Handshake: mismatched peers are rejected with a message, not served.
// ---------------------------------------------------------------------------
TEST(RemoteBackend, FingerprintMismatchIsACleanHandshakeError) {
    auto server = start_server(transcendental_sim(), "sim-A");
    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*server))};
    ro.fingerprint = "sim-B";
    try {
        net::RemoteBackend backend(ro);
        FAIL() << "expected a handshake rejection";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("fingerprint mismatch"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("sim-A"), std::string::npos) << e.what();
    }
    EXPECT_EQ(server->handshakes_rejected(), 1u);
}

TEST(RemoteBackend, ReplicatesMismatchIsACleanHandshakeError) {
    auto server = start_server(transcendental_sim(), "sim-A", 2, 1);
    net::RemoteBackendOptions ro;
    ro.endpoints = {net::parse_endpoint(endpoint_of(*server))};
    ro.fingerprint = "sim-A";
    ro.replicates = 3;
    try {
        net::RemoteBackend backend(ro);
        FAIL() << "expected a handshake rejection";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("replicates mismatch"), std::string::npos)
            << e.what();
    }
}

TEST(RemoteBackend, ProtocolVersionMismatchIsRejected) {
    auto server = start_server(transcendental_sim(), "sim-A");

    // A raw wire-level client from the future.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(server->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);

    net::Hello hello;
    hello.version = net::kProtocolVersion + 7;
    hello.fingerprint = "sim-A";
    ASSERT_TRUE(net::write_hello(fd, hello));
    std::uint64_t status = net::kStatusOk;
    std::string message;
    ASSERT_TRUE(net::read_welcome(fd, status, message));
    EXPECT_EQ(status, net::kStatusError);
    EXPECT_NE(message.find("protocol version mismatch"), std::string::npos) << message;
    ::close(fd);
}

TEST(RemoteBackend, ProgressReportsEveryPoint) {
    auto server = start_server(transcendental_sim(), "sim-A");
    RunnerOptions o = remote_options({endpoint_of(*server)}, "sim-A");
    std::atomic<std::size_t> reports{0};
    std::atomic<std::size_t> last_done{0};
    o.on_batch = [&](const BatchProgress& p) {
        reports.fetch_add(1);
        last_done.store(p.points_done);
        EXPECT_EQ(p.points_total, 9u);
        EXPECT_GE(p.elapsed_seconds, 0.0);
    };
    BatchRunner runner(transcendental_sim(), o);
    runner.run_design(kSpace, full_factorial(2, 3));  // 9 distinct points
    EXPECT_EQ(reports.load(), 9u);
    EXPECT_EQ(last_done.load(), 9u);
}

// ---------------------------------------------------------------------------
// Error semantics: a simulation that throws on the server surfaces as a
// runtime_error in design order, with the server's message.
// ---------------------------------------------------------------------------
TEST(RemoteBackend, RemoteSimulationErrorArrivesInDesignOrder) {
    const Simulation failing = [](const Vector& nat) -> std::map<std::string, double> {
        if (nat[0] > 7.0) throw std::invalid_argument("diverged hard");
        return {{"f", nat[0]}};
    };
    auto server = start_server(failing, "sim-err");
    BatchRunner runner(transcendental_sim(),
                       remote_options({endpoint_of(*server)}, "sim-err"));
    try {
        runner.run_design(kSpace, full_factorial(2, 4));  // natural x spans 0..10
        FAIL() << "expected a propagated simulation error";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("diverged hard"), std::string::npos) << e.what();
        EXPECT_NE(std::string(e.what()).find("simulation failed at point"), std::string::npos)
            << e.what();
    }
    // A failed run commits nothing, and the server survives the error.
    EXPECT_EQ(runner.cache_size(), 0u);
    EXPECT_GE(server->points_failed(), 1u);
    const RunResults ok = runner.run_points(kSpace, num::Matrix(1, 2));
    EXPECT_EQ(ok.simulations, 1u);
}

// ---------------------------------------------------------------------------
// Persistent cache over the remote layer: the snapshot file is the shared
// result store — a warm run asks the servers for nothing.
// ---------------------------------------------------------------------------
TEST(RemoteBackend, WarmPersistentCacheOverRemoteReportsZeroSimulations) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());
    const std::string fp = sc.fingerprint();
    TempFile cache("ehdoe-remote-warm");

    auto server = start_server(sc.make_simulation(), fp);
    RunnerOptions o = remote_options({endpoint_of(*server)}, fp);
    o.cache_file = cache.path();

    doe::RunResults base;
    {
        BatchRunner cold(sc.make_simulation(), o);
        auto* layer = dynamic_cast<const core::PersistentCache*>(&cold.backend());
        ASSERT_NE(layer, nullptr);  // the cache decorates the remote backend
        base = cold.run_design(space, ccd);
        EXPECT_EQ(base.simulations, 45u);
        EXPECT_TRUE(cold.save_cache());
    }
    EXPECT_EQ(server->points_served(), 45u);
    {
        BatchRunner warm(sc.make_simulation(), o);
        const RunResults r = warm.run_design(space, ccd);
        EXPECT_EQ(r.simulations, 0u);
        EXPECT_EQ(r.cache_hits, ccd.runs());
        EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
    }
    EXPECT_EQ(server->points_served(), 45u);  // the warm run never called home
}

// ---------------------------------------------------------------------------
// DesignFlow wiring: Options::endpoints shards the whole flow.
// ---------------------------------------------------------------------------
TEST(RemoteBackend, DesignFlowRunsItsWholeLoopOverShards) {
    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const std::string fp = sc.fingerprint();
    auto s1 = start_server(sc.make_simulation(), fp);
    auto s2 = start_server(sc.make_simulation(), fp);

    core::DesignFlow local(sc.design_space(), sc.make_simulation());
    local.run_ccd();

    core::DesignFlow::Options o;
    o.endpoints = {endpoint_of(*s1), endpoint_of(*s2)};
    o.cache_fingerprint = fp;
    core::DesignFlow flow(sc.design_space(), sc.make_simulation(), o);
    flow.run_ccd();
    EXPECT_EQ(flow.batch_stats().simulations, 45u);
    EXPECT_DOUBLE_EQ(flow.surface(core::kRespPackets).value(num::Vector(6)),
                     local.surface(core::kRespPackets).value(num::Vector(6)));
}

// ---------------------------------------------------------------------------
// External servers (CI smoke): when EHDOE_TEST_ENDPOINTS names running
// ehdoe-eval-server processes (S1, --duration 30, replicates 1), verify the
// equivalence contract against them. Skipped otherwise.
// ---------------------------------------------------------------------------
TEST(ExternalServers, MatchesInProcessBitwise) {
    const char* env = std::getenv("EHDOE_TEST_ENDPOINTS");
    if (!env || !*env) {
        GTEST_SKIP() << "EHDOE_TEST_ENDPOINTS not set";
    }
    std::vector<std::string> endpoints;
    std::stringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (!item.empty()) endpoints.push_back(item);
    }
    ASSERT_FALSE(endpoints.empty());

    const core::Scenario sc = core::Scenario::make(core::ScenarioId::OfficeHvac, 30.0);
    const DesignSpace space = sc.design_space();
    const Design ccd = doe::central_composite(space.dimension());

    const RunResults base =
        BatchRunner(sc.make_simulation(), RunnerOptions{}).run_design(space, ccd);
    BatchRunner remote(sc.make_simulation(), remote_options(endpoints, sc.fingerprint()));
    const RunResults r = remote.run_design(space, ccd);
    EXPECT_TRUE(num::approx_equal(r.responses, base.responses, 0.0));
    EXPECT_EQ(r.simulations, 45u);
    EXPECT_EQ(remote.threads(), endpoints.size());
}
