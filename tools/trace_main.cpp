// ehdoe-trace — merge client + server traces into one timeline.
//
// Takes the Chrome trace-event JSON a traced run wrote on the client side
// (RunnerOptions::trace_file / DesignFlow::Options::trace_file) plus the
// per-shard traces of the eval-servers it talked to (ehdoe-eval-server
// --trace), shifts every server's events onto the client clock (the v5
// handshake's clock sample, see core/trace_merge.hpp), and writes one
// merged trace any Chrome-trace viewer (chrome://tracing, Perfetto)
// renders as a lane per process:
//
//   ehdoe-trace --client run.json --server shard1.json --server shard2.json
//               --events run.events.jsonl --output merged.json
//
// Flags:
//   --client FILE     the client-side trace (required)
//   --server FILE     one per shard trace; repeatable (none is fine — the
//                     client trace alone still normalizes + summarizes)
//   --events FILE     one event journal (core/event_log.hpp JSONL) to
//                     interleave as a lane of instants; repeatable. A
//                     daemon journal (it holds a "listening" event) is
//                     shifted onto the client clock like a server trace.
//   --output FILE     merged trace destination (default: trace_merged.json)
//   --quiet           suppress the per-batch critical-path summary
//
// The summary (stdout) gives, per client batch: wall time, server evals
// covered, the busiest shard's busy time and the longest network receive.
// Clock-anchor problems (a shard the client never dialled, a pre-v5
// handshake) are warnings on stderr; the shard merges unshifted.
//
// Exit status: 0 on success (warnings included), 1 on unreadable or
// malformed input, 2 on usage errors.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/trace_merge.hpp"

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " --client trace.json [--server shard.json ...]\n"
                 "       [--events journal.jsonl ...] [--output merged.json] [--quiet]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string client_path;
    std::vector<std::string> server_paths;
    std::vector<std::string> journal_paths;
    std::string output_path = "trace_merged.json";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--client") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            client_path = v;
        } else if (arg == "--server") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            server_paths.push_back(v);
        } else if (arg == "--events") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            journal_paths.push_back(v);
        } else if (arg == "--output") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            output_path = v;
        } else if (arg == "--quiet") {
            quiet = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (client_path.empty()) return usage(argv[0]);

    try {
        const ehdoe::core::TraceMergeResult merged =
            ehdoe::core::merge_trace_files(client_path, server_paths, journal_paths);
        for (const std::string& warning : merged.warnings) {
            std::cerr << "ehdoe-trace: warning: " << warning << "\n";
        }
        std::ofstream out(output_path, std::ios::binary | std::ios::trunc);
        out << merged.json;
        out.flush();
        if (!out) {
            std::cerr << "ehdoe-trace: cannot write '" << output_path << "'\n";
            return 1;
        }
        std::cout << "merged " << merged.client_events << " client + " << merged.server_events
                  << " server events (" << merged.eval_spans << " evals, " << merged.batches
                  << " batches";
        if (merged.journal_events > 0)
            std::cout << ", " << merged.journal_events << " journal events";
        std::cout << ") -> " << output_path << "\n";
        if (!quiet && !merged.summary.empty()) std::cout << merged.summary;
    } catch (const std::exception& e) {
        std::cerr << "ehdoe-trace: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
