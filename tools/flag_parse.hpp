// Strict numeric flag parsing shared by the daemon CLIs.
//
// atoi folds garbage, trailing junk and out-of-range values into silently
// wrong configs ("--port 70000" truncates mod 2^16, "--workers banana"
// becomes 0); a daemon must refuse such flags loudly instead. Every parser
// here demands that the *whole* argument is one in-range decimal integer.
#pragma once

#include <cerrno>
#include <cstdint>
#include <cstdlib>

namespace ehdoe::tools {

/// The whole of `text` as a decimal long; false on empty input, trailing
/// junk or overflow.
inline bool parse_long_arg(const char* text, long& out) {
    if (!text || *text == '\0') return false;
    char* end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (*end != '\0' || errno == ERANGE) return false;
    out = value;
    return true;
}

/// A TCP port: an integer in [0, 65535] (0 = ephemeral).
inline bool parse_port_arg(const char* text, std::uint16_t& out) {
    long value = 0;
    if (!parse_long_arg(text, value) || value < 0 || value > 65535) return false;
    out = static_cast<std::uint16_t>(value);
    return true;
}

/// A count with an inclusive lower bound (workers >= 1, bytes >= 4096, ...).
inline bool parse_count_arg(const char* text, long min_value, std::size_t& out) {
    long value = 0;
    if (!parse_long_arg(text, value) || value < min_value) return false;
    out = static_cast<std::size_t>(value);
    return true;
}

/// The whole of `text` as one finite decimal double ("2", "0.5", "1e-3");
/// false on empty input, trailing junk ("4x17") or overflow.
inline bool parse_double_arg(const char* text, double& out) {
    if (!text || *text == '\0') return false;
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(text, &end);
    if (*end != '\0' || errno == ERANGE) return false;
    out = value;
    return true;
}

}  // namespace ehdoe::tools
