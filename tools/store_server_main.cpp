// ehdoe-store-server — the farm-wide shared result store daemon.
//
// Hosts one append-only segment-log store (store/segment_log.hpp) behind
// the store connection kind of the TCP wire protocol (v6), so any number
// of farm runs — on this machine or others — share one content-addressed
// result table and never pay for the same simulation twice:
//
//   ehdoe-store-server --dir /var/lib/ehdoe/store --port 4230
//   ehdoe-store-server --dir store.data --port 0          # ephemeral port
//   ehdoe-store-server --dir store.data --compact         # offline GC
//
// Flags:
//   --dir PATH            segment directory (required; created if needed)
//   --host ADDR           interface to bind (default 127.0.0.1)
//   --port PORT           TCP port; 0 picks an ephemeral port (default 0)
//   --segment-bytes N     rotation threshold per segment (default 8 MiB,
//                         minimum 4096)
//   --compact             rewrite the live table into one fresh segment
//                         chain (dropping superseded records and deleting
//                         quarantined files), print a summary and exit —
//                         run it while no server owns the directory
//   --metrics-interval S  sample the health-plane metrics ring every S
//                         seconds (core/metrics.hpp; served in the v7
//                         store-stats reply). Default: disabled.
//   --events FILE         append the structured event journal (JSONL,
//                         core/event_log.hpp) here — segment quarantines
//                         land in it
//
// On startup the daemon prints one "listening on HOST:PORT ..." line
// (machine-readable; tests and scripts scrape the port), then serves until
// SIGINT/SIGTERM.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>

#include "core/event_log.hpp"
#include "store/store_server.hpp"
#include "flag_parse.hpp"

using namespace ehdoe;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " --dir path [--host addr] [--port p] [--segment-bytes n] [--compact]\n"
                 "       [--metrics-interval s] [--events file]\n";
    return 2;
}

int flag_error(const std::string& message) {
    std::cerr << "ehdoe-store-server: " << message << "\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    store::StoreServerOptions options;
    std::string events_path;
    bool compact = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--dir") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.dir = v;
        } else if (arg == "--host") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.host = v;
        } else if (arg == "--port") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_port_arg(v, options.port))
                return flag_error("--port must be an integer in [0, 65535], got '" +
                                  std::string(v) + "'");
        } else if (arg == "--segment-bytes") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_count_arg(v, 4096, options.max_segment_bytes))
                return flag_error("--segment-bytes must be an integer >= 4096, got '" +
                                  std::string(v) + "'");
        } else if (arg == "--metrics-interval") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_double_arg(v, options.metrics_interval_seconds) ||
                options.metrics_interval_seconds <= 0.0)
                return flag_error("--metrics-interval must be a positive number of "
                                  "seconds, got '" +
                                  std::string(v) + "'");
        } else if (arg == "--events") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            events_path = v;
        } else if (arg == "--compact") {
            compact = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (options.dir.empty()) return flag_error("--dir PATH is required");

    if (!events_path.empty()) {
        // Open before the recovery scan runs (the StoreServer ctor): a
        // quarantine found on startup must land in the journal too.
        if (!core::event_log::open(events_path))
            return flag_error("cannot open --events file '" + events_path + "'");
        core::event_log::set_process_label("ehdoe-store-server");
    }

    try {
        if (compact) {
            store::SegmentLogOptions lo;
            lo.max_segment_bytes = options.max_segment_bytes;
            store::SegmentLog log(options.dir, lo);
            const std::size_t keys = log.size();
            const std::size_t before = log.segment_count();
            log.compact();
            std::cout << "compacted " << options.dir << ": " << keys << " keys, "
                      << before << " -> " << log.segment_count() << " segments\n";
            return 0;
        }

        store::StoreServer server(options);
        server.start();
        // The journal's "listening" event is the clock anchor ehdoe-trace
        // --events matches against the client's handshake spans.
        core::event_log::Event("listening")
            .field("endpoint", options.host + ":" + std::to_string(server.port()));
        const store::SegmentLogCounters restored = server.log().counters();
        std::cout << "listening on " << options.host << ":" << server.port() << " dir="
                  << options.dir << " keys=" << server.log().size() << " segments="
                  << server.log().segment_count() << " quarantined="
                  << restored.quarantined_segments << std::endl;

        std::signal(SIGINT, handle_signal);
        std::signal(SIGTERM, handle_signal);
        while (!g_stop) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        const store::SegmentLogCounters counters = server.log().counters();
        std::cout << "shutting down: " << server.log().size() << " keys, appended "
                  << counters.records_appended << " records, served "
                  << server.gets_served() << " gets (" << server.get_hits()
                  << " hits) over " << server.connections_accepted() << " connections\n";
        server.stop();
        core::event_log::close();
    } catch (const std::exception& e) {
        std::cerr << "ehdoe-store-server: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
