// ehdoe-eval-server — one shard of the distributed evaluation service.
//
// Hosts a canonical scenario's node co-simulation behind the TCP wire
// protocol (net/eval_server.hpp) so any number of net::RemoteBackend
// clients can shard design evaluations across machines:
//
//   ehdoe-eval-server --scenario S1 --port 4217 --workers 4
//   ehdoe-eval-server --scenario S2 --duration 600 --mode subprocess
//   ehdoe-eval-server --mode exec --recipe s1.recipe --port 4217
//
// Flags:
//   --scenario S1|S2|S3   canonical scenario to serve (default S1; unused
//                         in exec mode — the recipe names the simulator)
//   --duration SECONDS    simulation horizon override (default: scenario's)
//   --host ADDR           interface to bind (default 127.0.0.1)
//   --port PORT           TCP port; 0 picks an ephemeral port (default 0)
//   --workers N           evaluation workers, >= 1 (default: all hardware
//                         threads when the flag is omitted)
//   --mode inprocess|subprocess|exec
//                         worker pool kind (default inprocess; subprocess
//                         isolates simulator crashes in forked processes;
//                         exec launches an external co-simulator process
//                         per point from --recipe)
//   --recipe FILE         external-simulator recipe (requires --mode exec)
//   --fingerprint STR     handshake identity override (default: the
//                         scenario fingerprint, or "exec:" + the recipe's
//                         content hash in exec mode)
//   --replicates N        replicates averaged per point (default 1)
//   --trace FILE          record this shard's trace spans (accept/
//                         handshake/eval, core/telemetry.hpp) and write a
//                         Chrome trace-event JSON file on shutdown; merge
//                         with the client's trace via ehdoe-trace
//   --metrics-interval S  sample the health-plane metrics ring every S
//                         seconds (core/metrics.hpp; served in the v7
//                         stats reply, rendered by ehdoe-farm-top /
//                         ehdoe-metrics-export). Default: disabled.
//   --events FILE         append this shard's structured event journal
//                         (JSONL, core/event_log.hpp) here; interleave
//                         with traces via ehdoe-trace --events
//   --print-fingerprint   print the served fingerprint and exit
//
// On startup the daemon prints one "listening on HOST:PORT ..." line
// (machine-readable; tests and scripts scrape the port), then serves until
// SIGINT/SIGTERM.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/event_log.hpp"
#include "core/scenario.hpp"
#include "core/telemetry.hpp"
#include "exec/sim_recipe.hpp"
#include "net/eval_server.hpp"
#include "flag_parse.hpp"

using namespace ehdoe;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--scenario S1|S2|S3] [--duration s] [--host addr] [--port p]\n"
                 "       [--workers n] [--mode inprocess|subprocess|exec] [--recipe file]\n"
                 "       [--fingerprint str] [--replicates n] [--trace file]\n"
                 "       [--metrics-interval s] [--events file] [--print-fingerprint]\n";
    return 2;
}

int flag_error(const std::string& message) {
    std::cerr << "ehdoe-eval-server: " << message << "\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string scenario_name = "S1";
    double duration = -1.0;
    bool print_fingerprint = false;
    std::string mode = "inprocess";
    std::string recipe_path;
    std::string fingerprint_override;
    std::string trace_path;
    std::string events_path;
    net::EvalServerOptions options;
    options.workers = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--scenario") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            scenario_name = v;
        } else if (arg == "--duration") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            duration = std::atof(v);
        } else if (arg == "--host") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.host = v;
        } else if (arg == "--port") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            // atoi truncates out-of-range ports mod 2^16 and folds garbage
            // to 0 — both would bind an unintended port instead of failing.
            if (!tools::parse_port_arg(v, options.port))
                return flag_error("--port must be an integer in [0, 65535], got '" +
                                  std::string(v) + "'");
        } else if (arg == "--workers") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_count_arg(v, 1, options.workers))
                return flag_error("--workers must be a positive integer (omit the flag "
                                  "for all hardware threads), got '" +
                                  std::string(v) + "'");
        } else if (arg == "--replicates") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_count_arg(v, 1, options.replicates))
                return flag_error("--replicates must be a positive integer, got '" +
                                  std::string(v) + "'");
        } else if (arg == "--mode") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            mode = v;
            if (mode != "inprocess" && mode != "subprocess" && mode != "exec")
                return flag_error("unknown --mode '" + mode +
                                  "' (expected inprocess, subprocess or exec)");
        } else if (arg == "--recipe") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            recipe_path = v;
        } else if (arg == "--fingerprint") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            fingerprint_override = v;
        } else if (arg == "--trace") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            trace_path = v;
        } else if (arg == "--metrics-interval") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (!tools::parse_double_arg(v, options.metrics_interval_seconds) ||
                options.metrics_interval_seconds <= 0.0)
                return flag_error("--metrics-interval must be a positive number of "
                                  "seconds, got '" +
                                  std::string(v) + "'");
        } else if (arg == "--events") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            events_path = v;
        } else if (arg == "--print-fingerprint") {
            print_fingerprint = true;
        } else {
            return usage(argv[0]);
        }
    }

    if (mode == "exec" && recipe_path.empty())
        return flag_error("--mode exec requires --recipe FILE");
    if (mode != "exec" && !recipe_path.empty())
        return flag_error("--recipe only applies to --mode exec");

    core::Simulation sim;
    std::string workload;
    if (mode == "exec") {
        try {
            options.recipe = exec::SimRecipe::parse_file(recipe_path);
        } catch (const std::exception& e) {
            return flag_error(e.what());
        }
        options.fingerprint = "exec:" + options.recipe->fingerprint();
        workload = "recipe=" + recipe_path;
    } else {
        core::ScenarioId id;
        try {
            id = core::scenario_from_name(scenario_name);
        } catch (const std::exception& e) {
            return flag_error(e.what());
        }
        const core::Scenario scenario = core::Scenario::make(id, duration);
        options.fingerprint = scenario.fingerprint();
        options.worker_kind = mode == "subprocess" ? core::BackendKind::Subprocess
                                                   : core::BackendKind::InProcess;
        sim = scenario.make_simulation();
        workload = "scenario=" + scenario_name;
    }
    // Test hook: EHDOE_TEST_SIM_DELAY_MS stretches every evaluation by a
    // fixed sleep so smoke scripts can kill a shard mid-run on purpose (the
    // CI metrics smoke forces a failover this way and asserts the journal).
    // Ignored in exec mode — there the recipe owns the simulator's pacing.
    if (const char* delay = std::getenv("EHDOE_TEST_SIM_DELAY_MS"); delay && *delay && sim) {
        const double delay_ms = std::atof(delay);
        if (delay_ms > 0.0) {
            sim = [inner = std::move(sim), delay_ms](const core::Vector& x) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(delay_ms));
                return inner(x);
            };
        }
    }
    if (!fingerprint_override.empty()) options.fingerprint = fingerprint_override;
    if (print_fingerprint) {
        std::cout << options.fingerprint << "\n";
        return 0;
    }

    try {
        if (!trace_path.empty()) {
            core::telemetry::enable();
            core::telemetry::set_process_label("ehdoe-eval-server");
        }
        if (!events_path.empty()) {
            if (!core::event_log::open(events_path))
                return flag_error("cannot open --events file '" + events_path + "'");
            core::event_log::set_process_label("ehdoe-eval-server");
        }
        net::EvalServer server(std::move(sim), options);
        server.start();
        const std::string endpoint_label =
            options.host + ":" + std::to_string(server.port());
        // The merge tool (core/trace_merge.hpp) matches this instant's
        // endpoint against the client's handshake spans to anchor clocks;
        // the journal's copy anchors `ehdoe-trace --events` the same way.
        core::telemetry::instant("listening", "server", "endpoint", endpoint_label);
        core::event_log::Event("listening").field("endpoint", endpoint_label);
        std::cout << "listening on " << endpoint_label << " "
                  << workload << " workers=" << server.options().workers << " mode=" << mode
                  << " replicates=" << options.replicates << " fingerprint="
                  << options.fingerprint << std::endl;

        std::signal(SIGINT, handle_signal);
        std::signal(SIGTERM, handle_signal);
        while (!g_stop) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        std::cout << "shutting down: served " << server.points_served() << " points ("
                  << server.points_failed() << " failed) over " << server.connections_accepted()
                  << " connections\n";
        server.stop();
        if (!trace_path.empty() && !core::telemetry::write_json(trace_path)) {
            std::cerr << "ehdoe-eval-server: cannot write trace file '" << trace_path << "'\n";
        }
        core::event_log::close();
    } catch (const std::exception& e) {
        std::cerr << "ehdoe-eval-server: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
