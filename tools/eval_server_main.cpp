// ehdoe-eval-server — one shard of the distributed evaluation service.
//
// Hosts a canonical scenario's node co-simulation behind the TCP wire
// protocol (net/eval_server.hpp) so any number of net::RemoteBackend
// clients can shard design evaluations across machines:
//
//   ehdoe-eval-server --scenario S1 --port 4217 --workers 4
//   ehdoe-eval-server --scenario S2 --duration 600 --mode subprocess
//
// Flags:
//   --scenario S1|S2|S3   canonical scenario to serve (default S1)
//   --duration SECONDS    simulation horizon override (default: scenario's)
//   --host ADDR           interface to bind (default 127.0.0.1)
//   --port PORT           TCP port; 0 picks an ephemeral port (default 0)
//   --workers N           evaluation workers; 0 = hardware threads (default 0)
//   --mode inprocess|subprocess
//                         worker pool kind (default inprocess; subprocess
//                         isolates simulator crashes in forked processes)
//   --replicates N        replicates averaged per point (default 1)
//   --print-fingerprint   print the scenario fingerprint and exit
//
// On startup the daemon prints one "listening on HOST:PORT ..." line
// (machine-readable; tests and scripts scrape the port), then serves until
// SIGINT/SIGTERM.
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "core/scenario.hpp"
#include "net/eval_server.hpp"

using namespace ehdoe;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--scenario S1|S2|S3] [--duration s] [--host addr] [--port p]\n"
                 "       [--workers n] [--mode inprocess|subprocess] [--replicates n]\n"
                 "       [--print-fingerprint]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string scenario_name = "S1";
    double duration = -1.0;
    bool print_fingerprint = false;
    net::EvalServerOptions options;
    options.workers = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--scenario") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            scenario_name = v;
        } else if (arg == "--duration") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            duration = std::atof(v);
        } else if (arg == "--host") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.host = v;
        } else if (arg == "--port") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.port = static_cast<std::uint16_t>(std::atoi(v));
        } else if (arg == "--workers") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.workers = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--replicates") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            options.replicates = static_cast<std::size_t>(std::atoi(v));
        } else if (arg == "--mode") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            if (std::strcmp(v, "inprocess") == 0) {
                options.worker_kind = core::BackendKind::InProcess;
            } else if (std::strcmp(v, "subprocess") == 0) {
                options.worker_kind = core::BackendKind::Subprocess;
            } else {
                return usage(argv[0]);
            }
        } else if (arg == "--print-fingerprint") {
            print_fingerprint = true;
        } else {
            return usage(argv[0]);
        }
    }

    core::ScenarioId id;
    if (scenario_name == "S1") {
        id = core::ScenarioId::OfficeHvac;
    } else if (scenario_name == "S2") {
        id = core::ScenarioId::Industrial;
    } else if (scenario_name == "S3") {
        id = core::ScenarioId::Transport;
    } else {
        std::cerr << "unknown scenario '" << scenario_name << "' (expected S1, S2 or S3)\n";
        return 2;
    }

    const core::Scenario scenario = core::Scenario::make(id, duration);
    options.fingerprint = scenario.fingerprint();
    if (print_fingerprint) {
        std::cout << options.fingerprint << "\n";
        return 0;
    }

    try {
        net::EvalServer server(scenario.make_simulation(), options);
        server.start();
        std::cout << "listening on " << options.host << ":" << server.port() << " scenario="
                  << scenario_name << " workers=" << server.options().workers << " mode="
                  << (options.worker_kind == core::BackendKind::Subprocess ? "subprocess"
                                                                           : "inprocess")
                  << " replicates=" << options.replicates << " fingerprint="
                  << options.fingerprint << std::endl;

        std::signal(SIGINT, handle_signal);
        std::signal(SIGTERM, handle_signal);
        while (!g_stop) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
        }
        std::cout << "shutting down: served " << server.points_served() << " points ("
                  << server.points_failed() << " failed) over " << server.connections_accepted()
                  << " connections\n";
        server.stop();
    } catch (const std::exception& e) {
        std::cerr << "ehdoe-eval-server: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
