// mock_hdl_sim — a tiny deterministic stand-in for an external HDL
// co-simulator, so the exec backend (src/exec/) is testable hermetically.
//
// Behaves like the real thing from the farm's point of view: a separate
// process that reads a simulation deck, runs a (node co-)simulation, and
// prints named responses — here the canonical harvester responses of a
// scenario, computed by the same ehdoe library the in-process backend
// uses, so exec-mode results can be asserted *bitwise identical* to
// InProcessBackend. All values print as C99 hexfloats: the full 64 bits
// survive the text round-trip in both directions.
//
// Deck (from --deck FILE or stdin; `#` comments):
//   scenario S1|S2|S3       canonical scenario (default S1)
//   duration SECONDS        horizon override (default: scenario's)
//   index K                 the point's dispatch index (fault flags key
//                           off it; never affects response values)
//   point V V V ...         natural-unit factor vector (hexfloats OK)
//
// Output (stdout): one `NAME=VALUE` line per response, then one
// `values V V ...` summary line (name-sorted order) — so recipes can
// exercise both the regex and the column extractor.
//
// Fault injection (for exercising the farm's failure paths):
//   --fail-every N      exit 3 when (index + 1) is a multiple of N
//                       (deterministic crash: retrying the same point
//                       fails again — the retry-exhaustion path)
//   --fail-marker FILE  exit 3 once, creating FILE; succeed when FILE
//                       already exists (the retry-recovers path)
//   --hang              never answer: fork a sleeping child (its pid goes
//                       to <deck>.hangpid, so tests can verify the whole
//                       process group died), then sleep forever
//   --hang-index K      --hang, but only for deck index K
//   --garbage-index K   print unparseable output (exit 0) for index K
//   --output FILE       write responses to FILE instead of stdout
//   --crlf              terminate output lines with \r\n (a Windows-style
//                       co-simulator; the runner must parse it identically)
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"

using namespace ehdoe;

namespace {

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--deck file] [--output file] [--fail-every n] [--fail-marker file]\n"
                 "       [--hang] [--hang-index k] [--garbage-index k] [--crlf]\n";
    return 2;
}

}  // namespace

int main(int argc, char** argv) {
    std::string deck_path;
    std::string output_path;
    long fail_every = 0;
    std::string fail_marker;
    bool hang_always = false;
    bool crlf = false;
    long hang_index = -1;
    long garbage_index = -1;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--deck") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            deck_path = v;
        } else if (arg == "--output") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            output_path = v;
        } else if (arg == "--fail-every") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            fail_every = std::atol(v);
        } else if (arg == "--fail-marker") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            fail_marker = v;
        } else if (arg == "--hang") {
            hang_always = true;
        } else if (arg == "--hang-index") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            hang_index = std::atol(v);
        } else if (arg == "--crlf") {
            crlf = true;
        } else if (arg == "--garbage-index") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            garbage_index = std::atol(v);
        } else {
            return usage(argv[0]);
        }
    }

    // ---- read the deck ----------------------------------------------------
    std::string deck_text;
    if (deck_path.empty()) {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        deck_text = buf.str();
    } else {
        std::ifstream in(deck_path, std::ios::binary);
        if (!in) {
            std::cerr << "mock_hdl_sim: cannot read deck '" << deck_path << "'\n";
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        deck_text = buf.str();
    }

    std::string scenario_name = "S1";
    double duration = -1.0;
    long index = 0;
    std::vector<double> point;
    bool saw_point = false;
    std::istringstream deck(deck_text);
    std::string line;
    while (std::getline(deck, line)) {
        std::istringstream ls(line);
        std::string key;
        if (!(ls >> key) || key[0] == '#') continue;
        if (key == "scenario") {
            ls >> scenario_name;
        } else if (key == "duration") {
            ls >> duration;
        } else if (key == "index") {
            ls >> index;
        } else if (key == "point") {
            point.clear();
            std::string tok;
            while (ls >> tok) {
                char* end = nullptr;
                const double v = std::strtod(tok.c_str(), &end);
                if (end == tok.c_str() || *end != '\0') {
                    std::cerr << "mock_hdl_sim: bad coordinate '" << tok << "'\n";
                    return 2;
                }
                point.push_back(v);
            }
            saw_point = true;
        } else {
            std::cerr << "mock_hdl_sim: unknown deck directive '" << key << "'\n";
            return 2;
        }
    }
    if (!saw_point || point.empty()) {
        std::cerr << "mock_hdl_sim: deck has no 'point' line\n";
        return 2;
    }

    // ---- fault flags, keyed on the deck index -----------------------------
    if (!fail_marker.empty()) {
        std::ifstream probe(fail_marker);
        if (!probe) {
            std::ofstream mark(fail_marker);
            std::cerr << "mock_hdl_sim: synthetic first-launch fault (marker '" << fail_marker
                      << "' created)\n";
            return 3;
        }
    }
    if (fail_every > 0 && (index + 1) % fail_every == 0) {
        std::cerr << "mock_hdl_sim: synthetic co-simulator crash at index " << index << "\n";
        return 3;
    }
    if (hang_always || (hang_index >= 0 && index == hang_index)) {
        // A child in our process group, pid published next to the deck: the
        // farm's kill-process-group must take it down with us.
        const std::string pid_path = (deck_path.empty() ? "mock_hdl_sim" : deck_path) +
                                     ".hangpid";
        const pid_t child = ::fork();
        if (child == 0) {
            for (;;) ::sleep(3600);
        }
        if (child > 0) {
            std::ofstream pid_out(pid_path);
            pid_out << child << "\n";
        }
        for (;;) ::sleep(3600);
    }

    // ---- the "co-simulation" ----------------------------------------------
    std::map<std::string, double> responses;
    try {
        const core::Scenario scenario =
            core::Scenario::make(core::scenario_from_name(scenario_name), duration);
        num::Vector natural(point.size());
        for (std::size_t i = 0; i < point.size(); ++i) natural[i] = point[i];
        responses = scenario.make_simulation()(natural);
    } catch (const std::exception& e) {
        std::cerr << "mock_hdl_sim: simulation failed: " << e.what() << "\n";
        return 4;
    }

    std::ofstream file_out;
    std::ostream* out = &std::cout;
    if (!output_path.empty()) {
        file_out.open(output_path, std::ios::binary | std::ios::trunc);
        if (!file_out) {
            std::cerr << "mock_hdl_sim: cannot write '" << output_path << "'\n";
            return 2;
        }
        out = &file_out;
    }

    if (garbage_index >= 0 && index == garbage_index) {
        *out << "%%% corrupted co-simulator dump, index " << index << " %%%\n";
        return 0;
    }

    const char* eol = crlf ? "\r\n" : "\n";
    char buf[64];
    for (const auto& [name, value] : responses) {
        std::snprintf(buf, sizeof buf, "%a", value);
        *out << name << "=" << buf << eol;
    }
    *out << "values";
    for (const auto& kv : responses) {
        std::snprintf(buf, sizeof buf, "%a", kv.second);
        *out << " " << buf;
    }
    *out << eol;
    return 0;
}
