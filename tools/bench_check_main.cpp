// ehdoe-bench-check — the CI performance gate.
//
// Reads the freshest line of each bench ledger named in the gate file and
// fails (exit 1) when any tracked metric regresses below its threshold:
//
//   ehdoe-bench-check [--history bench/history] [--gates bench/history/gates.json]
//
// The gate file format and check semantics live in core/perf_gate.hpp; the
// thresholds themselves are a reviewed, tracked file so raising the bar is
// a code-review diff, not a CI-config edit.
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "core/perf_gate.hpp"

namespace {

void usage(std::ostream& os) {
    os << "usage: ehdoe-bench-check [--history DIR] [--gates FILE]\n"
       << "\n"
       << "  --history DIR  bench ledger directory (default: bench/history)\n"
       << "  --gates FILE   gate thresholds (default: <history>/gates.json)\n";
}

/// Last non-empty line of a file, or empty when the file is unreadable.
std::string last_line(const std::string& path) {
    std::ifstream in(path);
    std::string line;
    std::string last;
    while (std::getline(in, line)) {
        if (!line.empty()) last = line;
    }
    return last;
}

}  // namespace

int main(int argc, char** argv) {
    std::string history = "bench/history";
    std::string gates_path;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--history" && i + 1 < argc) {
            history = argv[++i];
        } else if (arg == "--gates" && i + 1 < argc) {
            gates_path = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else {
            std::cerr << "ehdoe-bench-check: unknown argument '" << arg << "'\n";
            usage(std::cerr);
            return 2;
        }
    }
    if (gates_path.empty()) gates_path = history + "/gates.json";

    std::ifstream gates_in(gates_path);
    if (!gates_in) {
        std::cerr << "ehdoe-bench-check: cannot read gate file " << gates_path << "\n";
        return 2;
    }
    std::ostringstream gates_text;
    gates_text << gates_in.rdbuf();

    ehdoe::core::JsonValue gates;
    try {
        gates = ehdoe::core::parse_json(gates_text.str());
    } catch (const std::exception& e) {
        std::cerr << "ehdoe-bench-check: " << gates_path << ": " << e.what() << "\n";
        return 2;
    }

    std::map<std::string, std::string> ledgers;
    if (gates.kind == ehdoe::core::JsonValue::Kind::Object) {
        for (const auto& [ledger, spec] : gates.object) {
            (void)spec;
            const std::string line = last_line(history + "/" + ledger);
            if (!line.empty()) ledgers[ledger] = line;
        }
    }

    const ehdoe::core::GateReport report = ehdoe::core::check_gates(gates, ledgers);
    for (const auto& v : report.violations) {
        std::cerr << "gate violation: " << v.ledger;
        if (!v.path.empty()) std::cerr << " :: " << v.path;
        std::cerr << " — " << v.message << "\n";
    }
    if (!report.ok()) {
        std::cerr << "gate FAILED: " << report.violations.size() << " of "
                  << report.checks << " checks violated\n";
        return 1;
    }
    std::cout << "gate ok: " << report.checks << " checks against "
              << ledgers.size() << " ledgers\n";
    return 0;
}
