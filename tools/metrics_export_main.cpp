// ehdoe-metrics-export — Prometheus text exposition for the farm.
//
// Polls eval-server and store-server endpoints with their native stats
// frames (net/wire.hpp) and renders everything as Prometheus text
// exposition format 0.0.4, so the daemons themselves stay HTTP-free: this
// one process is the scrape target (or the node-exporter textfile writer)
// for a whole farm.
//
//   ehdoe-metrics-export --eval :4217 --eval :4218 --store :4230 --port 9109
//   ehdoe-metrics-export --eval :4217 --textfile /var/lib/node_exporter/ehdoe.prom
//   ehdoe-metrics-export --eval :4217            # one exposition to stdout
//
// Flags:
//   --eval HOST:PORT    an eval-server to poll (repeatable)
//   --store HOST:PORT   a store-server to poll (repeatable)
//   --port P            serve mode: answer every HTTP request on this port
//                       with a fresh poll (0 picks an ephemeral port);
//                       prints one "serving on HOST:PORT" line at startup
//   --host ADDR         serve-mode bind interface (default 127.0.0.1)
//   --textfile FILE     write mode: one poll, written atomically
//                       (tmp + rename) for the node-exporter textfile
//                       collector, then exit
//
// Without --port/--textfile one exposition goes to stdout. Every family
// carries an `endpoint` label; `ehdoe_up` says which endpoints answered.
// v7 daemons (metrics ring) add windowed gauges (ehdoe_eval_window_*)
// computed from ring deltas. Diagnostics go to stderr.
//
// Exit status (stdout/textfile modes): 0 when every endpoint answered,
// 1 when any was down, 2 on usage errors.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "net/remote_backend.hpp"
#include "store/store_client.hpp"
#include "flag_parse.hpp"

using namespace ehdoe;
namespace metrics = ehdoe::core::metrics;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--eval host:port ...] [--store host:port ...]\n"
                 "       [--port p [--host addr] | --textfile file]\n";
    return 2;
}

struct EvalPoll {
    std::string label;
    net::Endpoint endpoint;
    bool up = false;
    net::ShardStats stats;
    std::string error;
};

struct StorePoll {
    std::string label;
    bool up = false;
    net::StoreStats stats;
    std::string error;
};

/// Poll every endpoint concurrently (a down endpoint costs one timeout for
/// the whole poll, not one each).
void poll_all(std::vector<EvalPoll>& evals, std::vector<StorePoll>& stores) {
    std::vector<std::thread> pollers;
    pollers.reserve(evals.size() + stores.size());
    for (EvalPoll& e : evals) {
        pollers.emplace_back([&e] {
            e.up = net::query_shard_stats(e.endpoint, e.stats, e.error);
        });
    }
    for (StorePoll& s : stores) {
        pollers.emplace_back(
            [&s] { s.up = store::query_store_stats(s.label, s.stats, s.error); });
    }
    for (std::thread& p : pollers) p.join();
    for (const EvalPoll& e : evals) {
        if (!e.up)
            std::cerr << "[ehdoe-metrics-export] eval " << e.label << " down: " << e.error
                      << "\n";
    }
    for (const StorePoll& s : stores) {
        if (!s.up)
            std::cerr << "[ehdoe-metrics-export] store " << s.label << " down: " << s.error
                      << "\n";
    }
}

std::vector<std::pair<std::string, std::string>> endpoint_labels(const std::string& label) {
    return {{"endpoint", label}};
}

/// Render one exposition over the polled endpoints. Families are grouped
/// (one HELP/TYPE header, then every endpoint's sample) as the format
/// requires.
std::string render(const std::vector<EvalPoll>& evals, const std::vector<StorePoll>& stores) {
    std::string out;

    metrics::append_exposition_header(out, "ehdoe_up",
                                      "Whether the endpoint answered the stats poll.",
                                      "gauge");
    for (const EvalPoll& e : evals) {
        metrics::append_sample(out, "ehdoe_up",
                               {{"role", "eval"}, {"endpoint", e.label}}, e.up ? 1.0 : 0.0);
    }
    for (const StorePoll& s : stores) {
        metrics::append_sample(out, "ehdoe_up",
                               {{"role", "store"}, {"endpoint", s.label}}, s.up ? 1.0 : 0.0);
    }

    struct EvalFamily {
        const char* name;
        const char* help;
        const char* type;
        double (*get)(const net::ShardStats&);
    };
    static const EvalFamily kEvalFamilies[] = {
        {"ehdoe_eval_points_served_total", "Points answered with a result frame.", "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.points_served); }},
        {"ehdoe_eval_points_failed_total", "Points answered with an error frame.", "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.points_failed); }},
        {"ehdoe_eval_points_timed_out_total", "Points whose simulator hit the exec timeout.",
         "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.points_timed_out); }},
        {"ehdoe_eval_worker_respawns_total",
         "Crashed workers replaced / exec simulators relaunched.", "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.worker_respawns); }},
        {"ehdoe_eval_handshakes_rejected_total", "Handshakes refused at the door.", "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.handshakes_rejected); }},
        {"ehdoe_eval_connections_total", "Connections accepted.", "counter",
         [](const net::ShardStats& s) { return static_cast<double>(s.connections_accepted); }},
        {"ehdoe_eval_in_flight", "Points being evaluated right now.", "gauge",
         [](const net::ShardStats& s) { return static_cast<double>(s.in_flight); }},
        {"ehdoe_eval_uptime_seconds", "Server uptime.", "gauge",
         [](const net::ShardStats& s) { return s.uptime_seconds; }},
    };
    for (const EvalFamily& f : kEvalFamilies) {
        metrics::append_exposition_header(out, f.name, f.help, f.type);
        for (const EvalPoll& e : evals) {
            if (e.up) metrics::append_sample(out, f.name, endpoint_labels(e.label), f.get(e.stats));
        }
    }

    // Lifetime latency percentiles (v5+ shards that served something).
    struct LatencyFamily {
        const char* name;
        const char* help;
        double net::ShardStats::*member;
    };
    static const LatencyFamily kLatencyFamilies[] = {
        {"ehdoe_eval_latency_p50_us", "Lifetime per-point latency p50 (us).",
         &net::ShardStats::latency_p50_us},
        {"ehdoe_eval_latency_p95_us", "Lifetime per-point latency p95 (us).",
         &net::ShardStats::latency_p95_us},
        {"ehdoe_eval_latency_p99_us", "Lifetime per-point latency p99 (us).",
         &net::ShardStats::latency_p99_us},
    };
    for (const LatencyFamily& f : kLatencyFamilies) {
        metrics::append_exposition_header(out, f.name, f.help, "gauge");
        for (const EvalPoll& e : evals) {
            if (e.up && !e.stats.latency_buckets.empty())
                metrics::append_sample(out, f.name, endpoint_labels(e.label), e.stats.*f.member);
        }
    }

    // Windowed gauges from the v7 metrics ring: the shard's typical recent
    // p99 and its last-interval throughput — trend, not lifetime.
    metrics::append_exposition_header(out, "ehdoe_eval_window_p99_us",
                                      "Windowed per-point latency p99 (us; median of the "
                                      "ring's positive samples).",
                                      "gauge");
    for (const EvalPoll& e : evals) {
        if (!e.up || e.stats.metrics.empty()) continue;
        const int col = metrics::find_series(e.stats.metrics, "p99_us");
        if (col < 0) continue;
        const double v = metrics::window_value(e.stats.metrics, static_cast<std::size_t>(col));
        if (v > 0.0) metrics::append_sample(out, "ehdoe_eval_window_p99_us",
                                            endpoint_labels(e.label), v);
    }
    metrics::append_exposition_header(out, "ehdoe_eval_points_per_second",
                                      "Serve rate over the last sampled interval.", "gauge");
    for (const EvalPoll& e : evals) {
        if (!e.up || e.stats.metrics.rows.size() < 2 || e.stats.metrics.interval_us == 0)
            continue;
        const int col = metrics::find_series(e.stats.metrics, "served");
        if (col < 0) continue;
        const double delta =
            metrics::last_delta(e.stats.metrics, static_cast<std::size_t>(col));
        metrics::append_sample(
            out, "ehdoe_eval_points_per_second", endpoint_labels(e.label),
            delta / (static_cast<double>(e.stats.metrics.interval_us) / 1e6));
    }

    struct StoreFamily {
        const char* name;
        const char* help;
        const char* type;
        double (*get)(const net::StoreStats&);
    };
    static const StoreFamily kStoreFamilies[] = {
        {"ehdoe_store_keys", "Distinct keys in the live table.", "gauge",
         [](const net::StoreStats& s) { return static_cast<double>(s.keys); }},
        {"ehdoe_store_segments", "Live segment files.", "gauge",
         [](const net::StoreStats& s) { return static_cast<double>(s.segments); }},
        {"ehdoe_store_quarantined_segments", "Segments set aside as corrupt.", "gauge",
         [](const net::StoreStats& s) { return static_cast<double>(s.quarantined_segments); }},
        {"ehdoe_store_gets_served_total", "Keys looked up.", "counter",
         [](const net::StoreStats& s) { return static_cast<double>(s.gets_served); }},
        {"ehdoe_store_get_hits_total", "Lookups that found a record.", "counter",
         [](const net::StoreStats& s) { return static_cast<double>(s.get_hits); }},
        {"ehdoe_store_puts_received_total", "Records offered by clients.", "counter",
         [](const net::StoreStats& s) { return static_cast<double>(s.puts_received); }},
        {"ehdoe_store_records_appended_total", "Records newly appended.", "counter",
         [](const net::StoreStats& s) { return static_cast<double>(s.records_appended); }},
        {"ehdoe_store_hit_rate", "get_hits / gets_served (0 before any get).", "gauge",
         [](const net::StoreStats& s) {
             return s.gets_served > 0
                        ? static_cast<double>(s.get_hits) / static_cast<double>(s.gets_served)
                        : 0.0;
         }},
        {"ehdoe_store_uptime_seconds", "Server uptime.", "gauge",
         [](const net::StoreStats& s) { return s.uptime_seconds; }},
    };
    for (const StoreFamily& f : kStoreFamilies) {
        metrics::append_exposition_header(out, f.name, f.help, f.type);
        for (const StorePoll& s : stores) {
            if (s.up) metrics::append_sample(out, f.name, endpoint_labels(s.label), f.get(s.stats));
        }
    }
    return out;
}

bool all_up(const std::vector<EvalPoll>& evals, const std::vector<StorePoll>& stores) {
    for (const EvalPoll& e : evals) {
        if (!e.up) return false;
    }
    for (const StorePoll& s : stores) {
        if (!s.up) return false;
    }
    return true;
}

/// Atomic textfile write: the node-exporter collector must never read a
/// half-written exposition, so write beside the target and rename over it.
bool write_textfile(const std::string& path, const std::string& body) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        out << body;
        out.flush();
        if (!out) return false;
    }
    return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Minimal serve mode: any HTTP request on the port gets one fresh poll as
/// a text/plain exposition. Enough for a Prometheus scrape_config; not a
/// general web server.
int serve(const std::string& host, std::uint16_t port, std::vector<EvalPoll>& evals,
          std::vector<StorePoll>& stores) {
    const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::cerr << "ehdoe-metrics-export: socket failed\n";
        return 1;
    }
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
        ::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
        ::listen(listen_fd, 16) != 0) {
        std::cerr << "ehdoe-metrics-export: cannot listen on " << host << ":" << port << "\n";
        ::close(listen_fd);
        return 1;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof bound;
    std::uint16_t bound_port = port;
    if (::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
        bound_port = ntohs(bound.sin_port);
    std::cout << "serving on " << host << ":" << bound_port << std::endl;

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    while (!g_stop) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 200);
        if (ready <= 0) continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) continue;
        // Drain the request line + headers (best effort; we answer any
        // request the same way).
        char buf[1024];
        ::recv(fd, buf, sizeof buf, 0);

        poll_all(evals, stores);
        const std::string body = render(evals, stores);
        std::string reply =
            "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
            "Content-Length: " +
            std::to_string(body.size()) + "\r\n\r\n" + body;
        std::size_t sent = 0;
        while (sent < reply.size()) {
            const ssize_t n = ::send(fd, reply.data() + sent, reply.size() - sent, 0);
            if (n <= 0) break;
            sent += static_cast<std::size_t>(n);
        }
        ::close(fd);
    }
    ::close(listen_fd);
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<EvalPoll> evals;
    std::vector<StorePoll> stores;
    std::string textfile;
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    bool serve_mode = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--eval") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            EvalPoll e;
            try {
                e.endpoint = net::parse_endpoint(v);
            } catch (const std::exception& ex) {
                std::cerr << "ehdoe-metrics-export: " << ex.what() << "\n";
                return 2;
            }
            e.label = e.endpoint.host + ":" + std::to_string(e.endpoint.port);
            evals.push_back(std::move(e));
        } else if (arg == "--store") {
            const char* v = next();
            if (!v || *v == '\0') return usage(argv[0]);
            StorePoll s;
            s.label = v;
            stores.push_back(std::move(s));
        } else if (arg == "--textfile") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            textfile = v;
        } else if (arg == "--host") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            host = v;
        } else if (arg == "--port") {
            const char* v = next();
            if (!v || !tools::parse_port_arg(v, port)) return usage(argv[0]);
            serve_mode = true;
        } else {
            return usage(argv[0]);
        }
    }
    if (evals.empty() && stores.empty()) return usage(argv[0]);
    if (serve_mode && !textfile.empty()) {
        std::cerr << "ehdoe-metrics-export: --port and --textfile are exclusive\n";
        return 2;
    }

    if (serve_mode) return serve(host, port, evals, stores);

    poll_all(evals, stores);
    const std::string body = render(evals, stores);
    if (!textfile.empty()) {
        if (!write_textfile(textfile, body)) {
            std::cerr << "ehdoe-metrics-export: cannot write '" << textfile << "'\n";
            return 1;
        }
    } else {
        std::cout << body;
        std::cout.flush();
    }
    return all_up(evals, stores) ? 0 : 1;
}
