// ehdoe-farm-stats — live monitoring of a distributed evaluation farm.
//
// Polls every named eval-server endpoint with the stats frame of the wire
// protocol (net/wire.hpp, "EHDOES" connection kind) and prints one table
// row per shard: points served/failed, handshake rejects, worker respawns
// (exec mode: simulator relaunches), timed-out points, in-flight points
// (worker occupancy), connections, uptime, and — from v5 servers — the
// p50/p95/p99 of the shard's lifetime per-point eval latency (ms; "-" on
// a shard that has served nothing yet or speaks v4). The stats path is
// served outside the FIFO eval pipeline, so polling a loaded farm never
// delays evaluation traffic; everything shown is display-only and stays
// outside the determinism contract.
//
//   ehdoe-farm-stats 10.0.0.5:4217 10.0.0.6:4217
//   ehdoe-farm-stats --watch 5 :4217 :4218        # re-poll every 5 s
//   ehdoe-farm-stats --json :4217 | jq .          # dashboards
//   ehdoe-farm-stats --store 10.0.0.9:4300 :4217  # + store-daemon stats
//
// Flags:
//   --watch SECONDS   keep polling at this interval (default: poll once)
//   --count N         stop after N polls; without --watch, polls every
//                     2 seconds
//   --store HOST:PORT also poll this ehdoe-store-server's stats frame
//                     (repeatable): keys/segments/quarantined/hit-rate
//                     columns, and a "stores" array under --json
//   --straggler-k K   flag a shard as a straggler when its windowed p99
//                     (the v7 metrics ring; lifetime p99 on older shards)
//                     exceeds K x the farm median (default 2.0, >= 2
//                     shards required)
//   --csv             emit CSV instead of the aligned table
//   --json            emit one JSON object per poll (single line), with a
//                     per-shard array — machine consumption without
//                     table/CSV scraping. Schema documented in README.md
//                     ("Observability"); v5 shards add latency percentiles
//                     and the sparse histogram buckets. stdout carries
//                     ONLY the JSON objects; a down shard mid-watch is
//                     diagnosed on stderr.
//
// Exit status: 0 when every endpoint answered the last poll, 1 when any
// was unreachable or rejected the request, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "net/remote_backend.hpp"
#include "store/store_client.hpp"
#include "flag_parse.hpp"

using namespace ehdoe;

namespace {

enum class Format { Table, Csv, Json };

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--watch seconds] [--count n] [--store host:port ...] [--straggler-k k]"
                 " [--csv | --json] host:port [host:port ...]\n";
    return 2;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the error diagnoses we embed; endpoint specs are already clean.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// The straggler signal the future occupancy-aware scheduler will consume:
/// a shard whose windowed p99 (median of the positive p99 samples in its
/// v7 metrics ring; lifetime p99 when the shard has no ring) exceeds k x
/// the farm median. Needs >= 2 shards with a latency signal — one shard
/// has no farm to straggle behind.
std::vector<char> straggler_flags(const std::vector<net::ShardStats>& stats,
                                  const std::vector<char>& reachable, double k) {
    std::vector<char> flags(stats.size(), 0);
    std::vector<double> p99(stats.size(), 0.0);
    std::vector<double> positive;
    for (std::size_t i = 0; i < stats.size(); ++i) {
        if (!reachable[i]) continue;
        const int col = core::metrics::find_series(stats[i].metrics, "p99_us");
        double v = col >= 0 ? core::metrics::window_value(stats[i].metrics, col) : 0.0;
        if (v <= 0.0) v = stats[i].latency_p99_us;
        p99[i] = v;
        if (v > 0.0) positive.push_back(v);
    }
    if (positive.size() < 2) return flags;
    const double median = core::metrics::median_positive(positive);
    if (median <= 0.0) return flags;
    for (std::size_t i = 0; i < stats.size(); ++i) {
        if (p99[i] > k * median) flags[i] = 1;
    }
    return flags;
}

/// One poll over every endpoint; prints per `format`, returns true when
/// all endpoints answered. Endpoints are queried concurrently so down
/// shards cost one query timeout for the whole poll, not one each.
bool poll_once(const std::vector<net::Endpoint>& endpoints,
               const std::vector<std::string>& store_endpoints, Format format,
               long poll_index, double straggler_k) {
    std::vector<net::ShardStats> stats(endpoints.size());
    std::vector<std::string> errors(endpoints.size());
    std::vector<char> reachable(endpoints.size(), 0);
    std::vector<net::StoreStats> store_stats(store_endpoints.size());
    std::vector<std::string> store_errors(store_endpoints.size());
    std::vector<char> store_reachable(store_endpoints.size(), 0);
    std::vector<std::thread> pollers;
    pollers.reserve(endpoints.size() + store_endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        pollers.emplace_back([&, i] {
            reachable[i] = net::query_shard_stats(endpoints[i], stats[i], errors[i]) ? 1 : 0;
        });
    }
    for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
        pollers.emplace_back([&, i] {
            store_reachable[i] = store::query_store_stats(store_endpoints[i], store_stats[i],
                                                          store_errors[i])
                                     ? 1
                                     : 0;
        });
    }
    for (std::thread& p : pollers) p.join();

    bool all_ok = true;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        if (!reachable[i]) all_ok = false;
    }
    for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
        if (!store_reachable[i]) all_ok = false;
    }
    const std::vector<char> stragglers = straggler_flags(stats, reachable, straggler_k);

    // Diagnostics go to stderr in every format: under --json, stdout must
    // stay one parseable object per poll for whatever is piping it.
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        if (!reachable[i]) {
            std::cerr << "[ehdoe-farm-stats] shard " << endpoints[i].host << ":"
                      << endpoints[i].port << " down: " << errors[i] << "\n";
        }
    }
    for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
        if (!store_reachable[i]) {
            std::cerr << "[ehdoe-farm-stats] store " << store_endpoints[i]
                      << " down: " << store_errors[i] << "\n";
        }
    }

    if (format == Format::Json) {
        std::string out = "{\"poll\":" + std::to_string(poll_index) + ",\"shards\":[";
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
            const net::Endpoint& e = endpoints[i];
            const net::ShardStats& s = stats[i];
            if (i > 0) out += ",";
            out += "{\"endpoint\":\"" + json_escape(e.host + ":" + std::to_string(e.port)) +
                   "\",\"up\":" + (reachable[i] ? "true" : "false");
            if (reachable[i]) {
                char uptime[32];
                std::snprintf(uptime, sizeof uptime, "%.3f", s.uptime_seconds);
                out += ",\"served\":" + std::to_string(s.points_served) +
                       ",\"failed\":" + std::to_string(s.points_failed) +
                       ",\"rejects\":" + std::to_string(s.handshakes_rejected) +
                       ",\"respawns\":" + std::to_string(s.worker_respawns) +
                       ",\"timeouts\":" + std::to_string(s.points_timed_out) +
                       ",\"in_flight\":" + std::to_string(s.in_flight) +
                       ",\"connections\":" + std::to_string(s.connections_accepted) +
                       ",\"uptime_seconds\":" + uptime;
                out += std::string(",\"straggler\":") + (stragglers[i] ? "true" : "false");
                // Latency fields only when the shard reported a histogram
                // (a v4 shard, or one that served nothing, omits them).
                if (!s.latency_buckets.empty()) {
                    char p50[32], p95[32], p99[32];
                    std::snprintf(p50, sizeof p50, "%.1f", s.latency_p50_us);
                    std::snprintf(p95, sizeof p95, "%.1f", s.latency_p95_us);
                    std::snprintf(p99, sizeof p99, "%.1f", s.latency_p99_us);
                    out += std::string(",\"latency_p50_us\":") + p50 +
                           ",\"latency_p95_us\":" + p95 + ",\"latency_p99_us\":" + p99 +
                           ",\"latency_buckets\":[";
                    for (std::size_t b = 0; b < s.latency_buckets.size(); ++b) {
                        if (b > 0) out += ",";
                        out += "[" + std::to_string(s.latency_buckets[b].first) + "," +
                               std::to_string(s.latency_buckets[b].second) + "]";
                    }
                    out += "]";
                }
            } else {
                out += ",\"error\":\"" + json_escape(errors[i]) + "\"";
            }
            out += "}";
        }
        out += "]";
        if (!store_endpoints.empty()) {
            out += ",\"stores\":[";
            for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
                const net::StoreStats& s = store_stats[i];
                if (i > 0) out += ",";
                out += "{\"endpoint\":\"" + json_escape(store_endpoints[i]) +
                       "\",\"up\":" + (store_reachable[i] ? "true" : "false");
                if (store_reachable[i]) {
                    char uptime[32], hit_rate[32];
                    std::snprintf(uptime, sizeof uptime, "%.3f", s.uptime_seconds);
                    std::snprintf(hit_rate, sizeof hit_rate, "%.4f",
                                  s.gets_served > 0
                                      ? static_cast<double>(s.get_hits) /
                                            static_cast<double>(s.gets_served)
                                      : 0.0);
                    out += ",\"keys\":" + std::to_string(s.keys) +
                           ",\"segments\":" + std::to_string(s.segments) +
                           ",\"quarantined\":" + std::to_string(s.quarantined_segments) +
                           ",\"gets_served\":" + std::to_string(s.gets_served) +
                           ",\"get_hits\":" + std::to_string(s.get_hits) +
                           ",\"hit_rate\":" + hit_rate +
                           ",\"puts_received\":" + std::to_string(s.puts_received) +
                           ",\"records_appended\":" + std::to_string(s.records_appended) +
                           ",\"uptime_seconds\":" + uptime;
                } else {
                    out += ",\"error\":\"" + json_escape(store_errors[i]) + "\"";
                }
                out += "}";
            }
            out += "]";
        }
        out += ",\"all_up\":";
        out += all_ok ? "true" : "false";
        out += "}";
        std::cout << out << std::endl;
        return all_ok;
    }

    core::Table t("Farm stats (" + std::to_string(endpoints.size()) + " shards)");
    t.headers({"endpoint", "state", "served", "failed", "rejects", "respawns", "timeouts",
               "inflight", "conns", "uptime", "p50ms", "p95ms", "p99ms", "flag"});
    auto ms_cell = [](double us, bool have) -> std::string {
        if (!have) return "-";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f", us / 1000.0);
        return buf;
    };
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const net::Endpoint& e = endpoints[i];
        const net::ShardStats& s = stats[i];
        const std::string label = e.host + ":" + std::to_string(e.port);
        if (reachable[i]) {
            const bool have_latency = !s.latency_buckets.empty();
            t.row()
                .cell(label)
                .cell("up")
                .cell(static_cast<std::size_t>(s.points_served))
                .cell(static_cast<std::size_t>(s.points_failed))
                .cell(static_cast<std::size_t>(s.handshakes_rejected))
                .cell(static_cast<std::size_t>(s.worker_respawns))
                .cell(static_cast<std::size_t>(s.points_timed_out))
                .cell(static_cast<std::size_t>(s.in_flight))
                .cell(static_cast<std::size_t>(s.connections_accepted))
                .cell(core::format_seconds(s.uptime_seconds))
                .cell(ms_cell(s.latency_p50_us, have_latency))
                .cell(ms_cell(s.latency_p95_us, have_latency))
                .cell(ms_cell(s.latency_p99_us, have_latency))
                .cell(stragglers[i] ? "STRAGGLER" : "");
        } else {
            t.row().cell(label).cell("DOWN: " + errors[i]).cell("-").cell("-").cell("-").cell(
                "-").cell("-").cell("-").cell("-").cell("-").cell("-").cell("-").cell("-").cell(
                "-");
        }
    }
    if (format == Format::Csv) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }

    if (!store_endpoints.empty()) {
        core::Table st("Store stats (" + std::to_string(store_endpoints.size()) + " stores)");
        st.headers({"endpoint", "state", "keys", "segments", "quarantined", "gets", "hitrate",
                    "puts", "appended", "uptime"});
        for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
            const net::StoreStats& s = store_stats[i];
            if (store_reachable[i]) {
                char hit_rate[32];
                std::snprintf(hit_rate, sizeof hit_rate, "%.1f%%",
                              s.gets_served > 0 ? 100.0 * static_cast<double>(s.get_hits) /
                                                      static_cast<double>(s.gets_served)
                                                : 0.0);
                st.row()
                    .cell(store_endpoints[i])
                    .cell("up")
                    .cell(static_cast<std::size_t>(s.keys))
                    .cell(static_cast<std::size_t>(s.segments))
                    .cell(static_cast<std::size_t>(s.quarantined_segments))
                    .cell(static_cast<std::size_t>(s.gets_served))
                    .cell(hit_rate)
                    .cell(static_cast<std::size_t>(s.puts_received))
                    .cell(static_cast<std::size_t>(s.records_appended))
                    .cell(core::format_seconds(s.uptime_seconds));
            } else {
                st.row().cell(store_endpoints[i]).cell("DOWN: " + store_errors[i]).cell("-")
                    .cell("-").cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
            }
        }
        if (format == Format::Csv) {
            st.print_csv(std::cout);
        } else {
            st.print(std::cout);
        }
    }
    std::cout.flush();
    return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
    double watch_seconds = -1.0;
    long count = -1;
    double straggler_k = 2.0;
    Format format = Format::Table;
    std::vector<net::Endpoint> endpoints;
    std::vector<std::string> store_endpoints;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--watch") {
            // Strict parse: "--watch 5x" must be a usage error, not 5.
            const char* v = next();
            if (!v || !tools::parse_double_arg(v, watch_seconds) || watch_seconds <= 0.0)
                return usage(argv[0]);
        } else if (arg == "--count") {
            const char* v = next();
            if (!v || !tools::parse_long_arg(v, count) || count <= 0) return usage(argv[0]);
        } else if (arg == "--store") {
            const char* v = next();
            if (!v || *v == '\0') return usage(argv[0]);
            store_endpoints.push_back(v);
        } else if (arg == "--straggler-k") {
            const char* v = next();
            if (!v || !tools::parse_double_arg(v, straggler_k) || straggler_k <= 0.0)
                return usage(argv[0]);
        } else if (arg == "--csv") {
            format = Format::Csv;
        } else if (arg == "--json") {
            format = Format::Json;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            try {
                endpoints.push_back(net::parse_endpoint(arg));
            } catch (const std::exception& e) {
                std::cerr << "ehdoe-farm-stats: " << e.what() << "\n";
                return 2;
            }
        }
    }
    if (endpoints.empty() && store_endpoints.empty()) return usage(argv[0]);
    // --count alone still means "poll repeatedly": give it a sane cadence
    // instead of silently ignoring it.
    if (count > 0 && watch_seconds <= 0.0) watch_seconds = 2.0;

    bool all_ok = poll_once(endpoints, store_endpoints, format, 0, straggler_k);
    if (watch_seconds > 0.0) {
        for (long polls = 1; count < 0 || polls < count; ++polls) {
            std::this_thread::sleep_for(std::chrono::duration<double>(watch_seconds));
            if (format != Format::Json) std::cout << "\n";
            all_ok = poll_once(endpoints, store_endpoints, format, polls, straggler_k);
        }
    }
    return all_ok ? 0 : 1;
}
