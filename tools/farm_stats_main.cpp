// ehdoe-farm-stats — live monitoring of a distributed evaluation farm.
//
// Polls every named eval-server endpoint with the stats frame of the wire
// protocol (net/wire.hpp, "EHDOES" connection kind) and prints one table
// row per shard: points served/failed, handshake rejects, worker respawns
// (exec mode: simulator relaunches), timed-out points, in-flight points
// (worker occupancy), connections, uptime, and — from v5 servers — the
// p50/p95/p99 of the shard's lifetime per-point eval latency (ms; "-" on
// a shard that has served nothing yet or speaks v4). The stats path is
// served outside the FIFO eval pipeline, so polling a loaded farm never
// delays evaluation traffic; everything shown is display-only and stays
// outside the determinism contract.
//
//   ehdoe-farm-stats 10.0.0.5:4217 10.0.0.6:4217
//   ehdoe-farm-stats --watch 5 :4217 :4218        # re-poll every 5 s
//   ehdoe-farm-stats --json :4217 | jq .          # dashboards
//
// Flags:
//   --watch SECONDS   keep polling at this interval (default: poll once)
//   --count N         stop after N polls; without --watch, polls every
//                     2 seconds
//   --csv             emit CSV instead of the aligned table
//   --json            emit one JSON object per poll (single line), with a
//                     per-shard array — machine consumption without
//                     table/CSV scraping. Schema documented in README.md
//                     ("Observability"); v5 shards add latency percentiles
//                     and the sparse histogram buckets.
//
// Exit status: 0 when every endpoint answered the last poll, 1 when any
// was unreachable or rejected the request, 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/report.hpp"
#include "net/remote_backend.hpp"

using namespace ehdoe;

namespace {

enum class Format { Table, Csv, Json };

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--watch seconds] [--count n] [--csv | --json] host:port [host:port ...]\n";
    return 2;
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// the error diagnoses we embed; endpoint specs are already clean.
std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

/// One poll over every endpoint; prints per `format`, returns true when
/// all endpoints answered. Endpoints are queried concurrently so down
/// shards cost one query timeout for the whole poll, not one each.
bool poll_once(const std::vector<net::Endpoint>& endpoints, Format format, long poll_index) {
    std::vector<net::ShardStats> stats(endpoints.size());
    std::vector<std::string> errors(endpoints.size());
    std::vector<char> reachable(endpoints.size(), 0);
    std::vector<std::thread> pollers;
    pollers.reserve(endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        pollers.emplace_back([&, i] {
            reachable[i] = net::query_shard_stats(endpoints[i], stats[i], errors[i]) ? 1 : 0;
        });
    }
    for (std::thread& p : pollers) p.join();

    bool all_ok = true;
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        if (!reachable[i]) all_ok = false;
    }

    if (format == Format::Json) {
        std::string out = "{\"poll\":" + std::to_string(poll_index) + ",\"shards\":[";
        for (std::size_t i = 0; i < endpoints.size(); ++i) {
            const net::Endpoint& e = endpoints[i];
            const net::ShardStats& s = stats[i];
            if (i > 0) out += ",";
            out += "{\"endpoint\":\"" + json_escape(e.host + ":" + std::to_string(e.port)) +
                   "\",\"up\":" + (reachable[i] ? "true" : "false");
            if (reachable[i]) {
                char uptime[32];
                std::snprintf(uptime, sizeof uptime, "%.3f", s.uptime_seconds);
                out += ",\"served\":" + std::to_string(s.points_served) +
                       ",\"failed\":" + std::to_string(s.points_failed) +
                       ",\"rejects\":" + std::to_string(s.handshakes_rejected) +
                       ",\"respawns\":" + std::to_string(s.worker_respawns) +
                       ",\"timeouts\":" + std::to_string(s.points_timed_out) +
                       ",\"in_flight\":" + std::to_string(s.in_flight) +
                       ",\"connections\":" + std::to_string(s.connections_accepted) +
                       ",\"uptime_seconds\":" + uptime;
                // Latency fields only when the shard reported a histogram
                // (a v4 shard, or one that served nothing, omits them).
                if (!s.latency_buckets.empty()) {
                    char p50[32], p95[32], p99[32];
                    std::snprintf(p50, sizeof p50, "%.1f", s.latency_p50_us);
                    std::snprintf(p95, sizeof p95, "%.1f", s.latency_p95_us);
                    std::snprintf(p99, sizeof p99, "%.1f", s.latency_p99_us);
                    out += std::string(",\"latency_p50_us\":") + p50 +
                           ",\"latency_p95_us\":" + p95 + ",\"latency_p99_us\":" + p99 +
                           ",\"latency_buckets\":[";
                    for (std::size_t b = 0; b < s.latency_buckets.size(); ++b) {
                        if (b > 0) out += ",";
                        out += "[" + std::to_string(s.latency_buckets[b].first) + "," +
                               std::to_string(s.latency_buckets[b].second) + "]";
                    }
                    out += "]";
                }
            } else {
                out += ",\"error\":\"" + json_escape(errors[i]) + "\"";
            }
            out += "}";
        }
        out += "],\"all_up\":";
        out += all_ok ? "true" : "false";
        out += "}";
        std::cout << out << std::endl;
        return all_ok;
    }

    core::Table t("Farm stats (" + std::to_string(endpoints.size()) + " shards)");
    t.headers({"endpoint", "state", "served", "failed", "rejects", "respawns", "timeouts",
               "inflight", "conns", "uptime", "p50ms", "p95ms", "p99ms"});
    auto ms_cell = [](double us, bool have) -> std::string {
        if (!have) return "-";
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.1f", us / 1000.0);
        return buf;
    };
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const net::Endpoint& e = endpoints[i];
        const net::ShardStats& s = stats[i];
        const std::string label = e.host + ":" + std::to_string(e.port);
        if (reachable[i]) {
            const bool have_latency = !s.latency_buckets.empty();
            t.row()
                .cell(label)
                .cell("up")
                .cell(static_cast<std::size_t>(s.points_served))
                .cell(static_cast<std::size_t>(s.points_failed))
                .cell(static_cast<std::size_t>(s.handshakes_rejected))
                .cell(static_cast<std::size_t>(s.worker_respawns))
                .cell(static_cast<std::size_t>(s.points_timed_out))
                .cell(static_cast<std::size_t>(s.in_flight))
                .cell(static_cast<std::size_t>(s.connections_accepted))
                .cell(core::format_seconds(s.uptime_seconds))
                .cell(ms_cell(s.latency_p50_us, have_latency))
                .cell(ms_cell(s.latency_p95_us, have_latency))
                .cell(ms_cell(s.latency_p99_us, have_latency));
        } else {
            t.row().cell(label).cell("DOWN: " + errors[i]).cell("-").cell("-").cell("-").cell(
                "-").cell("-").cell("-").cell("-").cell("-").cell("-").cell("-").cell("-");
        }
    }
    if (format == Format::Csv) {
        t.print_csv(std::cout);
    } else {
        t.print(std::cout);
    }
    std::cout.flush();
    return all_ok;
}

}  // namespace

int main(int argc, char** argv) {
    double watch_seconds = -1.0;
    long count = -1;
    Format format = Format::Table;
    std::vector<net::Endpoint> endpoints;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--watch") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            watch_seconds = std::atof(v);
            if (watch_seconds <= 0.0) return usage(argv[0]);
        } else if (arg == "--count") {
            const char* v = next();
            if (!v) return usage(argv[0]);
            count = std::atol(v);
            if (count <= 0) return usage(argv[0]);
        } else if (arg == "--csv") {
            format = Format::Csv;
        } else if (arg == "--json") {
            format = Format::Json;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            try {
                endpoints.push_back(net::parse_endpoint(arg));
            } catch (const std::exception& e) {
                std::cerr << "ehdoe-farm-stats: " << e.what() << "\n";
                return 2;
            }
        }
    }
    if (endpoints.empty()) return usage(argv[0]);
    // --count alone still means "poll repeatedly": give it a sane cadence
    // instead of silently ignoring it.
    if (count > 0 && watch_seconds <= 0.0) watch_seconds = 2.0;

    bool all_ok = poll_once(endpoints, format, 0);
    if (watch_seconds > 0.0) {
        for (long polls = 1; count < 0 || polls < count; ++polls) {
            std::this_thread::sleep_for(std::chrono::duration<double>(watch_seconds));
            if (format != Format::Json) std::cout << "\n";
            all_ok = poll_once(endpoints, format, polls);
        }
    }
    return all_ok ? 0 : 1;
}
