// ehdoe-farm-top — live terminal dashboard for an evaluation farm.
//
// Polls eval-server shards (and optionally store daemons) every interval
// and redraws one screen: per-shard throughput, occupancy and latency
// *trends* computed from the v7 metrics ring (core/metrics.hpp) rather
// than lifetime counters — the rate column is the last sampled interval's
// serve rate, the spark column the ring's recent serve deltas, and the
// p99 column the windowed (median-of-ring) percentile. Shards that speak
// an older protocol (no ring) degrade to lifetime numbers with a '~' mark.
//
//   ehdoe-farm-top :4217 :4218 --store :4230
//   ehdoe-farm-top --interval 5 --count 12 :4217   # one minute, then exit
//
// Flags:
//   --interval S      redraw interval in seconds (default 2)
//   --count N         exit after N polls (default: run until SIGINT)
//   --store HOST:PORT also show this store daemon (repeatable): keys,
//                     segments, hit-rate (lifetime + last-interval)
//   --no-clear        append screens instead of ANSI clear (logs, CI)
//
// Exit status: 0 (SIGINT included), 2 on usage errors. A down endpoint is
// shown DOWN in the table; the dashboard keeps polling it.
#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "core/report.hpp"
#include "net/remote_backend.hpp"
#include "store/store_client.hpp"
#include "flag_parse.hpp"

using namespace ehdoe;
namespace metrics = ehdoe::core::metrics;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int usage(const char* argv0) {
    std::cerr << "usage: " << argv0
              << " [--interval s] [--count n] [--store host:port ...] [--no-clear]\n"
                 "       host:port [host:port ...]\n";
    return 2;
}

/// The ring's recent per-interval serve deltas as a block-character spark
/// line (oldest left), scaled to the window's own maximum.
std::string sparkline(const metrics::RingSnapshot& ring, int col, std::size_t width) {
    static const char* kBlocks[] = {" ", "▁", "▂", "▃",
                                    "▄", "▅", "▆", "▇", "█"};
    if (col < 0 || ring.rows.size() < 2) return "";
    std::vector<double> deltas;
    const std::size_t first =
        ring.rows.size() > width + 1 ? ring.rows.size() - (width + 1) : 0;
    for (std::size_t i = first + 1; i < ring.rows.size(); ++i) {
        const double d = ring.rows[i].values[static_cast<std::size_t>(col)] -
                         ring.rows[i - 1].values[static_cast<std::size_t>(col)];
        deltas.push_back(d > 0.0 ? d : 0.0);
    }
    double max = 0.0;
    for (const double d : deltas) max = std::max(max, d);
    std::string out;
    for (const double d : deltas) {
        const std::size_t idx =
            max > 0.0 ? static_cast<std::size_t>(d / max * 8.0 + 0.5) : 0;
        out += kBlocks[idx > 8 ? 8 : idx];
    }
    return out;
}

std::string fmt1(double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

void draw(const std::vector<net::Endpoint>& endpoints,
          const std::vector<std::string>& store_endpoints, long tick, bool clear) {
    std::vector<net::ShardStats> stats(endpoints.size());
    std::vector<std::string> errors(endpoints.size());
    std::vector<char> reachable(endpoints.size(), 0);
    std::vector<net::StoreStats> store_stats(store_endpoints.size());
    std::vector<std::string> store_errors(store_endpoints.size());
    std::vector<char> store_reachable(store_endpoints.size(), 0);
    std::vector<std::thread> pollers;
    pollers.reserve(endpoints.size() + store_endpoints.size());
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        pollers.emplace_back([&, i] {
            reachable[i] = net::query_shard_stats(endpoints[i], stats[i], errors[i]) ? 1 : 0;
        });
    }
    for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
        pollers.emplace_back([&, i] {
            store_reachable[i] = store::query_store_stats(store_endpoints[i], store_stats[i],
                                                          store_errors[i])
                                     ? 1
                                     : 0;
        });
    }
    for (std::thread& p : pollers) p.join();

    std::string screen;
    if (clear) screen += "\x1b[2J\x1b[H";  // clear + home

    core::Table t("ehdoe-farm-top  poll " + std::to_string(tick) + "  (" +
                  std::to_string(endpoints.size()) + " shards)");
    t.headers({"endpoint", "state", "rate/s", "spark", "inflight", "p50ms", "p99ms",
               "served", "failed", "respawns"});
    for (std::size_t i = 0; i < endpoints.size(); ++i) {
        const std::string label =
            endpoints[i].host + ":" + std::to_string(endpoints[i].port);
        if (!reachable[i]) {
            t.row().cell(label).cell("DOWN").cell("-").cell("").cell("-").cell("-").cell(
                "-").cell("-").cell("-").cell("-");
            continue;
        }
        const net::ShardStats& s = stats[i];
        const metrics::RingSnapshot& ring = s.metrics;
        const int served_col = metrics::find_series(ring, "served");
        const int p50_col = metrics::find_series(ring, "p50_us");
        const int p99_col = metrics::find_series(ring, "p99_us");
        const bool ringed = !ring.empty() && ring.interval_us > 0;

        std::string rate = "-";
        if (ringed && served_col >= 0 && ring.rows.size() >= 2) {
            const double delta =
                metrics::last_delta(ring, static_cast<std::size_t>(served_col));
            rate = fmt1(delta / (static_cast<double>(ring.interval_us) / 1e6));
        } else if (!ringed && s.uptime_seconds > 0.0) {
            // Pre-v7 shard: lifetime average, marked as such.
            rate = "~" + fmt1(static_cast<double>(s.points_served) / s.uptime_seconds);
        }
        auto pct_cell = [&](int col, double lifetime_us) -> std::string {
            double v = col >= 0 && ringed
                           ? metrics::window_value(ring, static_cast<std::size_t>(col))
                           : 0.0;
            std::string mark;
            if (v <= 0.0) {
                if (s.latency_buckets.empty()) return "-";
                v = lifetime_us;
                mark = "~";
            }
            return mark + fmt1(v / 1000.0);
        };
        t.row()
            .cell(label)
            .cell("up")
            .cell(rate)
            .cell(sparkline(ring, served_col, 20))
            .cell(static_cast<std::size_t>(s.in_flight))
            .cell(pct_cell(p50_col, s.latency_p50_us))
            .cell(pct_cell(p99_col, s.latency_p99_us))
            .cell(static_cast<std::size_t>(s.points_served))
            .cell(static_cast<std::size_t>(s.points_failed))
            .cell(static_cast<std::size_t>(s.worker_respawns));
    }
    std::ostringstream body;
    t.print(body);

    if (!store_endpoints.empty()) {
        core::Table st("Stores");
        st.headers({"endpoint", "state", "keys", "segments", "hitrate", "recent", "gets"});
        for (std::size_t i = 0; i < store_endpoints.size(); ++i) {
            if (!store_reachable[i]) {
                st.row().cell(store_endpoints[i]).cell("DOWN").cell("-").cell("-").cell(
                    "-").cell("-").cell("-");
                continue;
            }
            const net::StoreStats& s = store_stats[i];
            const std::string lifetime =
                s.gets_served > 0
                    ? fmt1(100.0 * static_cast<double>(s.get_hits) /
                           static_cast<double>(s.gets_served)) + "%"
                    : "-";
            // Last-interval hit rate from the ring's counter deltas.
            std::string recent = "-";
            const int gets_col = metrics::find_series(s.metrics, "gets_served");
            const int hits_col = metrics::find_series(s.metrics, "get_hits");
            if (gets_col >= 0 && hits_col >= 0 && s.metrics.rows.size() >= 2) {
                const double dg =
                    metrics::last_delta(s.metrics, static_cast<std::size_t>(gets_col));
                const double dh =
                    metrics::last_delta(s.metrics, static_cast<std::size_t>(hits_col));
                if (dg > 0.0) recent = fmt1(100.0 * dh / dg) + "%";
            }
            st.row()
                .cell(store_endpoints[i])
                .cell("up")
                .cell(static_cast<std::size_t>(s.keys))
                .cell(static_cast<std::size_t>(s.segments))
                .cell(lifetime)
                .cell(recent)
                .cell(static_cast<std::size_t>(s.gets_served));
        }
        st.print(body);
    }
    screen += body.str();
    std::cout << screen;
    std::cout.flush();
}

}  // namespace

int main(int argc, char** argv) {
    double interval_seconds = 2.0;
    long count = -1;
    bool no_clear = false;
    std::vector<net::Endpoint> endpoints;
    std::vector<std::string> store_endpoints;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char* {
            if (i + 1 >= argc) return nullptr;
            return argv[++i];
        };
        if (arg == "--interval") {
            const char* v = next();
            if (!v || !tools::parse_double_arg(v, interval_seconds) || interval_seconds <= 0.0)
                return usage(argv[0]);
        } else if (arg == "--count") {
            const char* v = next();
            if (!v || !tools::parse_long_arg(v, count) || count <= 0) return usage(argv[0]);
        } else if (arg == "--store") {
            const char* v = next();
            if (!v || *v == '\0') return usage(argv[0]);
            store_endpoints.push_back(v);
        } else if (arg == "--no-clear") {
            no_clear = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage(argv[0]);
        } else {
            try {
                endpoints.push_back(net::parse_endpoint(arg));
            } catch (const std::exception& e) {
                std::cerr << "ehdoe-farm-top: " << e.what() << "\n";
                return 2;
            }
        }
    }
    if (endpoints.empty() && store_endpoints.empty()) return usage(argv[0]);

    std::signal(SIGINT, handle_signal);
    std::signal(SIGTERM, handle_signal);
    for (long tick = 0; (count < 0 || tick < count) && !g_stop; ++tick) {
        draw(endpoints, store_endpoints, tick, !no_clear);
        if (count >= 0 && tick + 1 >= count) break;
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_seconds));
    }
    return 0;
}
